"""Pipeline engine: monolith-equivalent vs incremental re-runs, batch sweep.

Three measurements, persisted to ``BENCH_flow_pipeline.json`` at the
repo root so later PRs have a perf trajectory to beat:

* ``cold_run_s`` -- a full flow on an empty stage cache (what the old
  monolithic ``CoolFlow.run`` always cost);
* ``warm_run_s`` -- the same flow again on the same (graph, arch) pair:
  every stage is served from the cross-run stage cache;
* ``batch`` -- a partitioner x architecture sweep through
  :class:`~repro.flow.batch.BatchRunner` on every backend (serial,
  4 threads, 4 processes); for these small pure-Python jobs serial is
  expected to win -- the pools are there for failure isolation and for
  minute-scale jobs where compute dwarfs result pickling.
"""

import json
import time
from pathlib import Path

from repro.apps import four_band_equalizer, fuzzy_controller
from repro.flow import BatchRunner, CoolFlow, FlowJob
from repro.partition import GreedyPartitioner, MilpPartitioner
from repro.platform import cool_board, minimal_board

RESULTS_PATH = Path(__file__).resolve().parents[1] / \
    "BENCH_flow_pipeline.json"


def _sweep_jobs():
    equalizer = four_band_equalizer(words=8)
    fuzzy = fuzzy_controller()
    jobs = []
    for arch in (minimal_board(), cool_board()):
        for partitioner in (GreedyPartitioner(), MilpPartitioner()):
            for graph in (equalizer, fuzzy):
                jobs.append(FlowJob(graph=graph, arch=arch,
                                    partitioner=partitioner))
    return jobs


def measure():
    graph = four_band_equalizer(words=8)
    flow = CoolFlow(minimal_board(), partitioner=GreedyPartitioner())

    started = time.perf_counter()
    cold = flow.run(graph)
    cold_s = time.perf_counter() - started

    started = time.perf_counter()
    warm = flow.run(graph)
    warm_s = time.perf_counter() - started

    backends = {}
    all_ok = True
    for backend, workers in (("serial", None), ("thread", 4),
                             ("process", 4)):
        started = time.perf_counter()
        outcomes = BatchRunner(max_workers=workers, backend=backend) \
            .run(_sweep_jobs())
        backends[backend] = round(time.perf_counter() - started, 6)
        all_ok = all_ok and all(o.ok for o in outcomes)

    return {
        "cold_run_s": round(cold_s, 6),
        "warm_run_s": round(warm_s, 6),
        "warm_speedup": round(cold_s / warm_s, 2) if warm_s else None,
        "cold_stage_runs": sum(cold.stage_runs.values()),
        "warm_stage_runs": sum(warm.stage_runs.values()),
        "batch": {
            "jobs": len(_sweep_jobs()),
            "workers": 4,
            "seconds_per_backend": backends,
            "all_ok": all_ok,
        },
    }


def test_flow_pipeline_benchmark(benchmark, run_once):
    payload = run_once(benchmark, measure)

    assert payload["warm_stage_runs"] == 0, \
        "second run of an unchanged design must be fully cache-served"
    assert payload["warm_run_s"] < payload["cold_run_s"]
    assert payload["batch"]["all_ok"]

    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print("\nPipeline engine -- incremental & batch timings:")
    print(f"  cold full flow      : {payload['cold_run_s'] * 1e3:8.1f} ms "
          f"({payload['cold_stage_runs']} stage executions)")
    print(f"  warm (cache-served) : {payload['warm_run_s'] * 1e3:8.1f} ms "
          f"({payload['warm_speedup']}x faster)")
    batch = payload["batch"]
    for backend, seconds in batch["seconds_per_backend"].items():
        print(f"  batch {batch['jobs']} jobs [{backend:>7}] : "
              f"{seconds * 1e3:8.1f} ms")
    print(f"  results -> {RESULTS_PATH.name}")
