"""Ablation C: memory-cell reuse vs the naive per-edge allocation.

Paper Fig. 3 allocates cells per inter-unit edge from a base address;
our allocator adds lifetime-based reuse.  This benchmark quantifies the
footprint saving on several workloads and asserts reuse never loses.
"""

import random

from repro.apps import four_band_equalizer, fuzzy_controller, random_task_graph
from repro.estimate import CostModel
from repro.graph import from_mapping
from repro.platform import cool_board
from repro.schedule import list_schedule
from repro.stg import allocate_memory

WORKLOADS = [
    ("equalizer", lambda: four_band_equalizer(words=16), 2),
    ("fuzzy", fuzzy_controller, 3),
    ("random_30", lambda: random_task_graph(30, seed=9), 4),
    ("random_60", lambda: random_task_graph(60, seed=10), 5),
]


def sweep():
    arch = cool_board()
    rows = []
    for name, build, pseed in WORKLOADS:
        graph = build()
        rng = random.Random(pseed)
        mapping = {node.name: rng.choice(arch.resource_names)
                   for node in graph.internal_nodes()}
        partition = from_mapping(graph, mapping, arch.fpga_names,
                                 arch.processor_names)
        schedule = list_schedule(partition, CostModel(graph, arch))
        reuse = allocate_memory(schedule, arch, reuse=True)
        naive = allocate_memory(schedule, arch, reuse=False)
        rows.append((name, len(partition.cut_edges()), reuse, naive))
    return rows


def test_ablation_memory_reuse(benchmark, run_once):
    rows = run_once(benchmark, sweep)

    print("\nAblation C -- memory footprint (words):")
    print(f"  {'workload':<11} {'cut edges':>9} {'naive':>7} "
          f"{'reuse':>7} {'saving':>7}")
    for name, cut, reuse, naive in rows:
        assert reuse.validate() == []
        assert naive.validate() == []
        assert reuse.words_used <= naive.words_used
        saving = 1 - reuse.words_used / max(naive.words_used, 1)
        print(f"  {name:<11} {cut:>9} {naive.words_used:>7} "
              f"{reuse.words_used:>7} {saving:>7.0%}")

    # at least one workload must show real sharing
    assert any(r.words_used < n.words_used for _, _, r, n in rows)
