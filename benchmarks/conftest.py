"""Shared fixtures/helpers for the reproduction benchmarks."""

import pytest


def once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive pipeline exactly once per round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              iterations=1, rounds=1)


@pytest.fixture
def run_once():
    return once
