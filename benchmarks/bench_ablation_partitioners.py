"""Ablation A: COOL's partitioning engines compared.

Paper Section 2 lists three options -- MILP, MILP+heuristic, genetic
algorithms.  This benchmark compares all engines (plus our from-scratch
branch-and-bound backend) on three workloads and asserts the expected
quality ordering: the exact MILP is never worse than the heuristics on
makespan, and every engine returns feasible implementations.
"""

from repro.apps import four_band_equalizer, fuzzy_controller, random_task_graph
from repro.partition import (GaConfig, GeneticPartitioner, GreedyPartitioner,
                             MilpHeuristicPartitioner, MilpPartitioner,
                             PartitioningProblem)
from repro.platform import cool_board
from repro.schedule import validate_schedule

ENGINES = [
    MilpPartitioner(backend="scipy"),
    MilpPartitioner(backend="bnb"),
    MilpHeuristicPartitioner(),
    GreedyPartitioner(),
    GeneticPartitioner(GaConfig(population=20, generations=15, seed=3)),
]

WORKLOADS = [
    ("equalizer", lambda: four_band_equalizer(words=16)),
    ("fuzzy", fuzzy_controller),
    ("random_20", lambda: random_task_graph(20, seed=4)),
]


def compare():
    arch = cool_board()
    table = {}
    for wname, build in WORKLOADS:
        problem = PartitioningProblem(build(), arch)
        for engine in ENGINES:
            table[(wname, engine.name)] = engine.partition(problem)
    return table


def test_ablation_partitioner_comparison(benchmark, run_once):
    table = run_once(benchmark, compare)

    print("\nAblation A -- partitioning engines:")
    print(f"  {'workload':<11} {'engine':<16} {'makespan':>9} "
          f"{'hw CLBs':>8} {'cut':>4} {'time[s]':>8}")
    for (wname, ename), result in table.items():
        assert validate_schedule(result.schedule) == []
        assert result.feasibility.area_ok and result.feasibility.memory_ok
        print(f"  {wname:<11} {ename:<16} {result.makespan:>9} "
              f"{result.hw_area:>8} {len(result.partition.cut_edges()):>4} "
              f"{result.runtime_s:>8.3f}")

    for wname, _ in WORKLOADS:
        milp = table[(wname, "milp[scipy]")].makespan
        for ename in ("greedy", "genetic", "milp+heuristic"):
            # exact optimization should not lose to the heuristics by
            # more than the load-bound gap; assert a generous bound
            assert milp <= int(1.15 * table[(wname, ename)].makespan) + 1

    # both MILP backends agree on solution quality
    for wname, _ in WORKLOADS:
        a = table[(wname, "milp[scipy]")].makespan
        b = table[(wname, "milp[bnb]")].makespan
        assert abs(a - b) <= max(a, b) * 0.1 + 1
