"""Ablation B: STG state minimization.

The paper states the number of STG states is minimized before memory
allocation.  This benchmark measures how much the minimization achieves
over growing graphs and asserts the construction arithmetic
(3N + resources + 3 before) and a meaningful reduction after.
"""

import random

from repro.apps import random_task_graph
from repro.estimate import CostModel
from repro.graph import from_mapping
from repro.platform import cool_board
from repro.schedule import list_schedule
from repro.stg import build_stg, minimize_stg

SIZES = (10, 20, 40, 80)


def sweep():
    arch = cool_board()
    rows = []
    for n in SIZES:
        graph = random_task_graph(n, seed=n)
        rng = random.Random(n)
        mapping = {node.name: rng.choice(arch.resource_names)
                   for node in graph.internal_nodes()}
        partition = from_mapping(graph, mapping, arch.fpga_names,
                                 arch.processor_names)
        schedule = list_schedule(partition, CostModel(graph, arch))
        stg = build_stg(schedule)
        mini, report = minimize_stg(stg)
        rows.append((n, partition, report))
    return rows


def test_ablation_stg_minimization(benchmark, run_once):
    rows = run_once(benchmark, sweep)

    print("\nAblation B -- STG minimization over graph size:")
    print(f"  {'nodes':>5} {'before':>7} {'after':>6} {'reduction':>9}")
    for n, partition, report in rows:
        n_res = len(partition.resources_used)
        assert report.states_before == 3 * n + n_res + 3
        assert report.states_after < report.states_before
        # the contraction removes at least the unguarded chain states:
        # expect a reduction of roughly one third or more
        assert report.reduction > 0.30
        print(f"  {n:>5} {report.states_before:>7} "
              f"{report.states_after:>6} {report.reduction:>9.0%}")
