"""repro-lint over the repository: gate + runtime + rule census.

Writes ``BENCH_lint.json`` at the repo root:

- the repository must lint **clean** (every surviving finding
  suppressed or baselined, each with a written reason);
- a seeded violation fixture must trip every rule family (the linter
  has teeth -- an engine regression that stops finding anything would
  otherwise look like a perfectly clean tree);
- rule/family census, suppression + baseline counts and wall-clock.

CI runs this as a smoke (``--no-write``) next to the shard bit-identity
smokes: the lint gate is the first line of defense for the determinism
contract those benchmarks re-prove dynamically.
"""

import argparse
import json
import sys
import textwrap
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import Baseline, all_rules, lint_sources

RESULTS_PATH = REPO_ROOT / "BENCH_lint.json"
BASELINE_PATH = REPO_ROOT / "lint_baseline.json"

EXPECTED_FAMILIES = ("DET", "FRZ", "OBS", "PKL", "PUR")

#: One offense per family: the linter must catch all of them.
VIOLATION_FIXTURE = textwrap.dedent("""
    import time
    from dataclasses import dataclass
    from repro.obs import span as obs_span

    def fingerprint(x):
        with obs_span("hash", kind="stage"):
            return (time.time(), [i for i in set(x)])

    @dataclass
    class JobPayload:
        handle: object

    def _stage_x(ctx):
        ctx.put("out", ctx.get("hidden"))
        return {}

    STAGES = [Stage("x", ("graph",), ("out",), _stage_x)]

    def clobber(a: Automaton):
        a.initial = "s0"
    """)


def measure():
    baseline = Baseline.load(BASELINE_PATH) if BASELINE_PATH.is_file() \
        else None
    # repo-relative paths regardless of cwd, so baseline entries match
    sources = {
        str(file.relative_to(REPO_ROOT)): file.read_text(encoding="utf-8")
        for file in sorted((REPO_ROOT / "src").rglob("*.py"))}
    started = time.perf_counter()
    result = lint_sources(sources, baseline=baseline)
    elapsed = time.perf_counter() - started

    fixture = lint_sources({"fixture.py": VIOLATION_FIXTURE})
    return {
        "repo": {
            "clean": result.clean,
            "files": result.files,
            "rules_run": result.rules_run,
            "seconds": round(elapsed, 3),
            "findings": len(result.findings),
            "rule_counts": result.rule_counts(),
            "suppressed": len(result.suppressed),
            "suppression_reasons": sorted(
                suppression.reason
                for _finding, suppression in result.suppressed),
            "baselined": len(result.baselined),
            "stale_baseline": len(result.stale_baseline),
        },
        "registry": {
            "rules": [rule.id for rule in all_rules()],
            "families": sorted({rule.family for rule in all_rules()}),
        },
        "violation_fixture": {
            "findings": len(fixture.findings),
            "family_counts": fixture.family_counts(),
        },
    }


def check(payload):
    repo = payload["repo"]
    assert repo["clean"], \
        f"repository must lint clean, got {repo['findings']} finding(s)"
    assert repo["files"] > 100, "the whole src tree must be analyzed"
    assert repo["rules_run"] >= 13
    for family in EXPECTED_FAMILIES:
        assert family in payload["registry"]["families"], \
            f"rule family {family} is not registered"
    assert all(reason for reason in repo["suppression_reasons"]), \
        "every inline suppression must carry a reason"
    assert repo["stale_baseline"] == 0, "baseline has stale entries"
    fixture = payload["violation_fixture"]
    missing = [family for family in EXPECTED_FAMILIES
               if fixture["family_counts"].get(family, 0) == 0]
    assert not missing, \
        f"violation fixture not caught by famil{'y' if len(missing) == 1 else 'ies'} {missing}"


def report(payload):
    repo = payload["repo"]
    fixture = payload["violation_fixture"]
    lines = [
        "repro-lint gate:",
        f"  {repo['files']} files, {repo['rules_run']} rules, "
        f"{repo['seconds']:.2f}s",
        f"  findings: {repo['findings']} (clean={repo['clean']}), "
        f"suppressed: {repo['suppressed']}, "
        f"baselined: {repo['baselined']}",
        f"  violation fixture: {fixture['findings']} finding(s) across "
        f"{fixture['family_counts']}",
    ]
    return "\n".join(lines)


def test_lint_gate(benchmark, run_once):
    payload = run_once(benchmark, measure)
    check(payload)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print("\n" + report(payload))
    print(f"  results -> {RESULTS_PATH.name}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="repro-lint repository gate and census")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_lint.json (CI smoke runs)")
    args = parser.parse_args(argv)
    payload = measure()
    check(payload)
    if not args.no_write:
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(report(payload))
    if not args.no_write:
        print(f"  results -> {RESULTS_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
