"""Sharded map-reduce sweep: wall-clock speedup on a real multi-core backend.

Drives a :func:`repro.workloads.workload_suite` population (200+ designs
by default) through the ``"shard"`` backend of
:class:`~repro.flow.batch.BatchRunner` and persists the evidence to
``BENCH_shard_sweep.json`` at the repo root:

* ``sweeps`` -- wall-clock of the identical sweep on ``serial`` vs
  ``shard`` (4 worker processes), plus the bit-identity check: outcomes,
  Pareto front and ranking order must match the serial reference
  exactly;
* ``speedup_gate`` -- >= 2x over serial with 4 workers, *enforced only
  on a multi-core host at full suite size* (a 1-core container cannot
  speed anything up; the gate records why it was skipped);
* ``shards`` -- the map-reduce evidence: per-shard job counts, worker
  pids (distinct pids prove real process parallelism) and the merged
  per-worker stage-cache statistics;
* ``isolation`` -- an unpicklable job must fail at *submission time*
  with an error naming the offending field, never poison the pool.

Runs under pytest-benchmark (``pytest benchmarks/bench_shard_sweep.py``)
or standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_shard_sweep.py --designs 16
"""

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

from bench_artifact_store import fresh_process_sweep
from repro.flow import BatchRunner, DesignSpaceExplorer, FlowJob
from repro.partition import GreedyPartitioner
from repro.platform import minimal_board
from repro.workloads import workload_suite

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_shard_sweep.json"

DEFAULT_DESIGNS = 200
DEFAULT_WORKERS = 4
SUITE_SEED = 13

#: Suite size of the restart-the-process warm-start assertion (an
#: always-enforced correctness gate, not a perf measurement, so it runs
#: on a deliberately small sub-suite even at full benchmark size).
RESTART_DESIGNS = 8
RESTART_L2_GATE = 0.5

#: The speedup gate is only meaningful at full suite size on a host with
#: at least this many cores; smaller runs record why it was skipped.
GATE_MIN_CPUS = 4
GATE_SPEEDUP = 2.0


class _UnpicklablePartitioner(GreedyPartitioner):
    """Cannot cross a process boundary (holds a thread lock)."""

    def __init__(self):
        super().__init__()
        self._lock = threading.Lock()


def _ranked_view(exploration):
    """Comparable projection of a ranked exploration (no wall-clock)."""
    return [(p.label, p.graph, p.metrics, p.feasible)
            for p in exploration.ranked()]


def _explore(specs, runner):
    explorer = DesignSpaceExplorer(specs,
                                   architectures=[minimal_board()],
                                   partitioners=[GreedyPartitioner()],
                                   runner=runner)
    started = time.perf_counter()
    exploration = explorer.explore()
    return exploration, time.perf_counter() - started


def measure(n_designs: int = DEFAULT_DESIGNS, seed: int = SUITE_SEED,
            workers: int = DEFAULT_WORKERS) -> dict:
    # compact payloads by construction: the specs (not built graphs) go
    # into the jobs, so every worker builds its designs in-process
    specs = workload_suite(n_designs, seed=seed)

    serial_exp, serial_s = _explore(specs, BatchRunner(backend="serial"))
    shard_runner = BatchRunner(shards=workers, max_workers=workers)
    shard_exp, shard_s = _explore(specs, shard_runner)

    identical = (
        _ranked_view(shard_exp) == _ranked_view(serial_exp)
        and shard_exp.points == serial_exp.points
        and shard_exp.pareto() == serial_exp.pareto()
        and [o.ok for o in shard_exp.outcomes]
        == [o.ok for o in serial_exp.outcomes])

    stats = shard_runner.shard_stats
    cpus = os.cpu_count() or 1
    speedup = round(serial_s / shard_s, 2) if shard_s else None
    gate_enforced = cpus >= GATE_MIN_CPUS and n_designs >= DEFAULT_DESIGNS
    if gate_enforced:
        gate_reason = f"multi-core host ({cpus} cpus), full suite"
    elif cpus < GATE_MIN_CPUS:
        gate_reason = (f"host has {cpus} cpu(s) < {GATE_MIN_CPUS}: worker "
                       f"processes time-slice one core, no speedup possible")
    else:
        gate_reason = (f"smoke suite ({n_designs} < {DEFAULT_DESIGNS} "
                       f"designs): pool startup dominates")

    # isolation: a poisoned job fails at submission, named, pool unharmed
    arch = minimal_board()
    jobs = [FlowJob(workload=specs[0], arch=arch,
                    partitioner=GreedyPartitioner(), label="good"),
            FlowJob(workload=specs[-1], arch=arch,
                    partitioner=_UnpicklablePartitioner(), label="poison")]
    order = []
    outcomes = BatchRunner(shards=2, max_workers=2).run(
        jobs, progress=lambda o, d, t: order.append(o.job.name))

    # restart-the-process warm start: a brand-new python process swept
    # against the store the first one left behind must be served from
    # the persistent tier and reproduce the same points bit-exactly
    restart_designs = min(RESTART_DESIGNS, n_designs)
    with tempfile.TemporaryDirectory(prefix="bench-shard-store-") as root:
        store_path = Path(root) / "store"
        first = fresh_process_sweep(restart_designs, seed, 2, store_path)
        second = fresh_process_sweep(restart_designs, seed, 2, store_path)
    restart_l2 = second["cache"]["l2"]
    warm_restart = {
        "designs": restart_designs,
        "process_restarted": first["pid"] != second["pid"],
        "identical": all(second[view] == first[view]
                         for view in ("points", "pareto", "ranked")),
        "l2_hit_rate": round(
            restart_l2["hits"]
            / max(1, restart_l2["hits"] + restart_l2["misses"]), 4),
        "required": RESTART_L2_GATE,
        "cold_fallbacks": second["cache"]["cold_fallbacks"],
    }

    return {
        "suite": {
            "designs": len(specs),
            "seed": seed,
            "families": sorted({s.family for s in specs}),
        },
        "host_cpus": cpus,
        "sweeps": {
            "serial": {"seconds": round(serial_s, 6),
                       "ok": sum(o.ok for o in serial_exp.outcomes),
                       "pareto": len(serial_exp.pareto())},
            "shard": {"seconds": round(shard_s, 6),
                      "workers": workers,
                      "ok": sum(o.ok for o in shard_exp.outcomes),
                      "pareto": len(shard_exp.pareto())},
        },
        "identical_to_serial": identical,
        "speedup_gate": {
            "speedup": speedup,
            "required": GATE_SPEEDUP,
            "enforced": gate_enforced,
            "reason": gate_reason,
        },
        "shards": {
            "planned": stats.planned_shards,
            "map_seconds": round(stats.map_seconds, 6),
            "reduce_seconds": round(stats.reduce_seconds, 6),
            "distinct_worker_pids": len({row["pid"]
                                         for row in stats.shards}),
            "per_shard": stats.shards,
            "merged_cache": stats.cache,
        },
        "isolation": {
            "jobs": len(outcomes),
            "ok_outcomes": sum(o.ok for o in outcomes),
            "failed_outcomes": sum(not o.ok for o in outcomes),
            "poison_error": next((o.error for o in outcomes if not o.ok),
                                 None),
            "poison_rejected_first": bool(order) and order[0] == "poison",
        },
        "warm_restart": warm_restart,
    }


def check(payload: dict) -> None:
    """The shard-sweep regression gate (shared by pytest and the CLI)."""
    assert payload["identical_to_serial"], \
        "sharded sweep must be bit-identical to the serial backend"
    sweeps = payload["sweeps"]
    assert sweeps["serial"]["ok"] == payload["suite"]["designs"]
    assert sweeps["shard"]["ok"] == sweeps["serial"]["ok"]
    gate = payload["speedup_gate"]
    if gate["enforced"]:
        assert gate["speedup"] >= gate["required"], \
            (f"shard backend must be >= {gate['required']}x over serial "
             f"on a multi-core host, got {gate['speedup']}x")
    shards = payload["shards"]
    assert shards["planned"] == len(shards["per_shard"])
    assert sum(row["jobs"] for row in shards["per_shard"]) == \
        payload["suite"]["designs"]
    assert shards["merged_cache"]["caches"] >= 1
    isolation = payload["isolation"]
    assert isolation["failed_outcomes"] == 1
    assert isolation["ok_outcomes"] == isolation["jobs"] - 1
    assert "partitioner" in isolation["poison_error"], \
        "submission-time validation must name the offending field"
    assert "pickle" in isolation["poison_error"].lower()
    assert isolation["poison_rejected_first"], \
        "poisoned jobs must be rejected before the map stage runs"
    restart = payload["warm_restart"]
    assert restart["process_restarted"], \
        "the warm-restart sweep must have run in a fresh process"
    assert restart["identical"], \
        "a restarted process against the store must reproduce the points"
    assert restart["l2_hit_rate"] >= restart["required"], \
        (f"restarted process must be served from the persistent tier "
         f"(L2 hit rate >= {restart['required']}, "
         f"got {restart['l2_hit_rate']})")
    assert restart["cold_fallbacks"] == 0


def report(payload: dict) -> str:
    lines = ["Sharded sweep -- map-reduce over worker processes:"]
    suite = payload["suite"]
    sweeps = payload["sweeps"]
    gate = payload["speedup_gate"]
    shards = payload["shards"]
    lines.append(f"  suite               : {suite['designs']} designs "
                 f"(seed {suite['seed']}, {payload['host_cpus']} cpus)")
    lines.append(f"  sweep [ serial]     : "
                 f"{sweeps['serial']['seconds'] * 1e3:8.1f} ms")
    lines.append(f"  sweep [  shard]     : "
                 f"{sweeps['shard']['seconds'] * 1e3:8.1f} ms "
                 f"({sweeps['shard']['workers']} workers, "
                 f"{shards['distinct_worker_pids']} distinct pids)")
    enforced = "enforced" if gate["enforced"] else \
        f"not enforced: {gate['reason']}"
    lines.append(f"  speedup             : {gate['speedup']}x "
                 f"(gate >= {gate['required']}x, {enforced})")
    lines.append(f"  identical to serial : "
                 f"{payload['identical_to_serial']}")
    lines.append(f"  map/reduce          : {shards['map_seconds'] * 1e3:8.1f}"
                 f" / {shards['reduce_seconds'] * 1e3:.1f} ms over "
                 f"{shards['planned']} shards")
    isolation = payload["isolation"]
    lines.append(f"  isolation           : {isolation['failed_outcomes']} "
                 f"poisoned job rejected at submission, sweep survived")
    restart = payload["warm_restart"]
    lines.append(f"  warm restart        : fresh process served at "
                 f"{restart['l2_hit_rate']:.0%} L2 hit rate "
                 f"({restart['designs']} designs, identical "
                 f"{restart['identical']})")
    return "\n".join(lines)


def test_shard_sweep_benchmark(benchmark, run_once):
    payload = run_once(benchmark, measure)
    assert payload["suite"]["designs"] >= DEFAULT_DESIGNS
    check(payload)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print("\n" + report(payload))
    print(f"  results -> {RESULTS_PATH.name}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Sharded map-reduce sweep vs the serial backend")
    parser.add_argument("--designs", type=int, default=DEFAULT_DESIGNS,
                        help="suite size (default %(default)s)")
    parser.add_argument("--seed", type=int, default=SUITE_SEED,
                        help="suite seed (default %(default)s)")
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS,
                        help="shard/worker count (default %(default)s)")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_shard_sweep.json "
                             "(CI smoke runs)")
    args = parser.parse_args(argv)
    payload = measure(args.designs, args.seed, args.workers)
    check(payload)
    if not args.no_write:
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(report(payload))
    if not args.no_write:
        print(f"  results -> {RESULTS_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
