"""Extension experiment: the deadline / hardware-area trade-off curve.

The DAES'97 objective behind COOL's MILP is *minimize hardware area
subject to a timing constraint*.  Sweeping the deadline from the pure-
software makespan down towards the unconstrained-optimal makespan traces
the classic co-design trade-off curve: tighter deadlines can only cost
more hardware.  Asserted: monotonicity of the curve and feasibility of
every point.
"""

from repro.apps import four_band_equalizer
from repro.partition import (MilpError, MilpPartitioner,
                             PartitioningProblem, evaluate_mapping)
from repro.platform import minimal_board

N_POINTS = 5


def sweep():
    graph = four_band_equalizer(words=16)
    arch = minimal_board()
    free = PartitioningProblem(graph, arch)
    fastest = MilpPartitioner().partition(free).makespan
    sw = evaluate_mapping(free, {n.name: "dsp0"
                                 for n in graph.internal_nodes()})[1].makespan
    rows = []
    for i in range(N_POINTS):
        deadline = fastest + (sw - fastest) * i // (N_POINTS - 1)
        problem = PartitioningProblem(graph, arch, deadline=deadline)
        try:
            result = MilpPartitioner().partition(problem)
        except MilpError:
            rows.append((deadline, None))
            continue
        rows.append((deadline, result))
    return sw, fastest, rows


def test_tradeoff_deadline_vs_area(benchmark, run_once):
    sw, fastest, rows = run_once(benchmark, sweep)

    print("\nTrade-off -- hardware area vs deadline (equalizer):")
    print(f"  pure software makespan: {sw}; fastest partition: {fastest}")
    print(f"  {'deadline':>9} {'makespan':>9} {'hw CLBs':>8} {'hw nodes':>9}")
    areas = []
    for deadline, result in rows:
        if result is None or not result.feasibility.deadline_ok:
            # the load-bound surrogate could not close the gap for this
            # point; report it as infeasible rather than as a solution
            print(f"  {deadline:>9} {'infeasible':>9}")
            continue
        assert result.makespan <= deadline
        assert result.feasibility.feasible
        areas.append((deadline, result.hw_area))
        print(f"  {deadline:>9} {result.makespan:>9} {result.hw_area:>8} "
              f"{len(result.partition.hw_nodes()):>9}")

    # monotone shape: loosening the deadline never needs more hardware
    for (d1, a1), (d2, a2) in zip(areas, areas[1:]):
        assert d1 <= d2
        assert a2 <= a1 + 1  # allow solver tie-break jitter of one CLB

    # the loosest deadline (pure-software makespan) needs no hardware
    assert areas[-1][1] == 0
