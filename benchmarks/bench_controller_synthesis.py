"""Controller synthesis at suite scale: minimize + compose + verify.

Drives the unified automaton kernel over a 50-graph
:func:`repro.workloads.workload_suite` population (plus two larger
random graphs for headroom) and persists the numbers to
``BENCH_controller_synthesis.json`` at the repo root:

* ``minimizer`` -- wall-clock of the kernel's worklist partition
  refinement vs. the two implementations it replaced (the
  whole-signature-recompute loop of the old ``Fsm.minimize`` and the
  equivalence-merge pass of the old ``stg/minimize.py``), on identical
  inputs, best of several rounds.  Two kernel numbers are recorded:
  the *minimizer* proper runs on the interned automaton views, which
  in production are built once per design and shared with the
  executor, the harness composition, the verify stage and the
  fingerprint cache -- that number gates the regression check against
  the legacy loops (which operate on their native structures).  The
  *cold* number additionally pays the one-off view conversion and is
  reported alongside it, unasserted, so the amortized cost stays
  visible.  The kernel must reduce at least as far as the legacy
  implementations on every input.
* ``composition`` -- synthesizing the communicating controller
  composition (with kernel FSM minimization) and proving it
  trace-equivalent to the minimized STG via
  :func:`repro.controllers.verify_composition`, for every design in the
  suite.

Runs under pytest-benchmark or standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_controller_synthesis.py --graphs 8
"""

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.apps import random_task_graph
from repro.controllers import synthesize_system_controller, verify_composition
from repro.controllers.fsm import Fsm
from repro.estimate import CostModel
from repro.graph import from_mapping
from repro.partition import GreedyPartitioner
from repro.partition.base import PartitioningProblem
from repro.platform import cool_board, minimal_board
from repro.schedule import list_schedule
from repro.stg import Stg, StgTransition, build_stg, minimize_stg
from repro.stg.minimize import _merge_equivalent
from repro.workloads import workload_suite

RESULTS_PATH = Path(__file__).resolve().parents[1] / \
    "BENCH_controller_synthesis.json"

DEFAULT_GRAPHS = 50
SUITE_SEED = 7
SCALE_SIZES = (40, 80)
TIMING_ROUNDS = 3


# ----------------------------------------------------------------------
# the replaced implementations, kept verbatim as timing references
# ----------------------------------------------------------------------
def legacy_merge_equivalent(stg):
    """The pre-kernel STG equivalence merge: full-signature recompute of
    every state on every iteration (replaced by the kernel worklist)."""
    states = stg.states
    block_of = {}
    keys = {}
    for state in states:
        key = (state.kind, state.resource, state.name == stg.initial)
        block_of[state.name] = keys.setdefault(key, len(keys))
    changed = True
    while changed:
        changed = False
        signature = {}
        for state in states:
            outs = frozenset(
                (t.conditions, t.actions, block_of[t.dst])
                for t in stg.out_transitions(state.name))
            signature[state.name] = (block_of[state.name], outs)
        keys = {}
        new_blocks = {}
        for state in states:
            new_blocks[state.name] = keys.setdefault(
                signature[state.name], len(keys))
        if new_blocks != block_of:
            block_of = new_blocks
            changed = True
    representative = {}
    for state in states:
        representative.setdefault(block_of[state.name], state.name)
    merged = sum(1 for s in states
                 if representative[block_of[s.name]] != s.name)
    if merged == 0:
        return stg, 0
    out = Stg(stg.name)
    for state in states:
        if representative[block_of[state.name]] == state.name:
            out.add_state(state)
    out.initial = representative[block_of[stg.initial]] \
        if stg.initial else None
    seen = set()
    for t in stg.transitions:
        src = representative[block_of[t.src]]
        dst = representative[block_of[t.dst]]
        key = (src, dst, t.conditions, t.actions)
        if key in seen:
            continue
        seen.add(key)
        out.add_transition(StgTransition(src, dst, t.conditions, t.actions))
    return out, merged


def legacy_fsm_minimize(fsm):
    """The pre-kernel ``Fsm.minimize``: whole-signature recompute loop."""
    block_of = {}
    keys = {}
    for state in fsm.states:
        key = (fsm.state_outputs.get(state, ()), state == fsm.initial)
        block_of[state] = keys.setdefault(key, len(keys))
    changed = True
    while changed:
        changed = False
        signature = {}
        for state in fsm.states:
            outs = tuple((t.conditions, t.actions, block_of[t.dst])
                         for t in fsm.out_transitions(state))
            signature[state] = (block_of[state], outs)
        keys = {}
        refined = {}
        for state in fsm.states:
            refined[state] = keys.setdefault(signature[state], len(keys))
        if refined != block_of:
            block_of = refined
            changed = True
    representative = {}
    for state in fsm.states:
        representative.setdefault(block_of[state], state)
    reduced = Fsm(fsm.name)
    for state in fsm.states:
        if representative[block_of[state]] == state:
            reduced.add_state(state, fsm.state_outputs.get(state, ()))
    reduced.initial = representative[block_of[fsm.initial]] \
        if fsm.initial else None
    seen = set()
    for t in fsm.transitions:
        src = representative[block_of[t.src]]
        dst = representative[block_of[t.dst]]
        key = (src, dst, t.conditions, t.actions)
        if key not in seen:
            seen.add(key)
            reduced.add_transition(src, dst, t.conditions, t.actions)
    return reduced


# ----------------------------------------------------------------------
def _suite_designs(n_graphs, seed):
    """(graph, schedule) pairs: the workload suite plus scale graphs."""
    designs = []
    arch = minimal_board()
    for spec in workload_suite(n_graphs, seed=seed):
        graph = spec.build()
        result = GreedyPartitioner().partition(
            PartitioningProblem(graph, arch))
        designs.append((graph, result.schedule))
    big = cool_board()
    for size in SCALE_SIZES:
        graph = random_task_graph(size, seed=size)
        rng = random.Random(size)
        mapping = {node.name: rng.choice(big.resource_names)
                   for node in graph.internal_nodes()}
        partition = from_mapping(graph, mapping, big.fpga_names,
                                 big.processor_names)
        designs.append((graph, list_schedule(partition,
                                             CostModel(graph, big))))
    return designs


def _copy_stg(stg):
    """Fresh Stg with no warmed automaton cache (fair timing input)."""
    out = Stg(stg.name)
    for state in stg.states:
        out.add_state(state)
    out.initial = stg.initial
    for t in stg.transitions:
        out.add_transition(t)
    return out


def _copy_fsm(fsm):
    """Fresh Fsm with no warmed automaton cache (fair timing input)."""
    return Fsm(fsm.name, list(fsm.states), fsm.initial,
               list(fsm.transitions), dict(fsm.state_outputs))


def _best_of(rounds, make_inputs, fn):
    """Best wall-clock of ``fn`` over fresh inputs each round.

    Inputs are recreated outside the timed section every round so
    neither implementation benefits from per-object caches (the kernel
    views memoize their interned automata) -- both sides pay their full
    cost in every measured round.
    """
    best = None
    result = None
    for _ in range(rounds):
        inputs = make_inputs()
        started = time.perf_counter()
        result = [fn(item) for item in inputs]
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def measure(n_graphs: int = DEFAULT_GRAPHS, seed: int = SUITE_SEED) -> dict:
    designs = _suite_designs(n_graphs, seed)

    # shared minimizer inputs: contracted STGs and unminimized FSMs
    contracted = []
    minimized = []
    for graph, schedule in designs:
        stg = build_stg(schedule)
        only_contracted, _ = minimize_stg(stg, merge_equivalent=False)
        contracted.append(only_contracted)
        mini, _ = minimize_stg(stg)
        minimized.append((graph, mini))
    fsm_sets = [synthesize_system_controller(mini, minimize=False).fsms
                for _, mini in minimized]
    all_fsms = [fsm for fsms in fsm_sets for fsm in fsms]

    # 1. kernel minimizer vs the two replaced implementations.  Legacy
    # runs on fresh copies every round (it has no caches to warm); the
    # kernel is measured twice: cold on fresh copies (pays the one-off
    # interned-view conversion) and as the minimizer proper on shared
    # views (what every caller after the first sees, since the view is
    # reused by the executor, harness and verify stage).
    fresh_stgs = lambda: [_copy_stg(stg) for stg in contracted]  # noqa: E731
    fresh_fsms = lambda: [_copy_fsm(f) for f in all_fsms]        # noqa: E731
    legacy_stg_s, legacy_stg = _best_of(TIMING_ROUNDS, fresh_stgs,
                                        legacy_merge_equivalent)
    legacy_fsm_s, legacy_fsms = _best_of(TIMING_ROUNDS, fresh_fsms,
                                         legacy_fsm_minimize)
    cold_stg_s, _ = _best_of(TIMING_ROUNDS, fresh_stgs, _merge_equivalent)
    cold_fsm_s, _ = _best_of(TIMING_ROUNDS, fresh_fsms,
                             lambda f: f.minimize())
    shared_stgs = fresh_stgs()
    shared_fsms = fresh_fsms()
    for stg in shared_stgs:       # build the interned views once,
        stg.to_automaton(isolate_initial=True)
    for fsm in shared_fsms:       # exactly as one flow run does
        fsm.to_automaton()
    kernel_stg_s, kernel_stg = _best_of(
        TIMING_ROUNDS, lambda: shared_stgs, _merge_equivalent)
    kernel_fsm_s, kernel_fsms = _best_of(
        TIMING_ROUNDS, lambda: shared_fsms, lambda f: f.minimize())
    # the kernel may legitimately merge *more* (it lets the initial
    # state represent its block instead of isolating it), never less
    reductions_agree = \
        all(len(b) <= len(a)
            for (a, _), (b, _) in zip(legacy_stg, kernel_stg)) and \
        all(len(b.states) <= len(a.states)
            for a, b in zip(legacy_fsms, kernel_fsms))

    # 2. compose + verify over the whole suite
    compose_started = time.perf_counter()
    controllers = [(graph, mini, synthesize_system_controller(mini))
                   for graph, mini in minimized]
    compose_s = time.perf_counter() - compose_started

    # the sampled tier is forced here on purpose: this bench times the
    # kernel minimizer + trace-sampling loop it always had, while the
    # tiered (bisimulation-first) strategy has its own gate in
    # bench_verify_composition.py
    verify_started = time.perf_counter()
    checks = [verify_composition(mini, controller, graph=graph,
                                 strategy="sampled")
              for graph, mini, controller in controllers]
    verify_s = time.perf_counter() - verify_started

    legacy_total = legacy_stg_s + legacy_fsm_s
    kernel_total = kernel_stg_s + kernel_fsm_s
    kernel_cold_total = cold_stg_s + cold_fsm_s
    return {
        "suite": {
            "graphs": len(designs),
            "workload_graphs": n_graphs,
            "scale_graphs": list(SCALE_SIZES),
            "seed": seed,
            "stg_states": sum(len(stg) for stg in contracted),
            "controller_fsms": len(all_fsms),
            "controller_states": sum(len(f.states) for f in all_fsms),
        },
        "minimizer": {
            "timing_rounds": TIMING_ROUNDS,
            "legacy_stg_merge_s": round(legacy_stg_s, 6),
            "kernel_stg_merge_s": round(kernel_stg_s, 6),
            "legacy_fsm_minimize_s": round(legacy_fsm_s, 6),
            "kernel_fsm_minimize_s": round(kernel_fsm_s, 6),
            "legacy_total_s": round(legacy_total, 6),
            "kernel_total_s": round(kernel_total, 6),
            "kernel_cold_total_s": round(kernel_cold_total, 6),
            "view_conversion_s": round(
                max(0.0, kernel_cold_total - kernel_total), 6),
            "speedup": round(legacy_total / kernel_total, 3)
            if kernel_total else None,
            "reductions_agree": reductions_agree,
        },
        "composition": {
            "compose_s": round(compose_s, 6),
            "verify_s": round(verify_s, 6),
            "verified": sum(c.equivalent for c in checks),
            "designs": len(checks),
            "environments": checks[0].environments if checks else 0,
            "starts_checked": sum(c.starts_checked for c in checks),
            "composite_configurations": sum(c.composite_configurations
                                            for c in checks),
        },
    }


def check(payload: dict, timing_margin: float | None = 1.0) -> None:
    """The kernel-regression gate (shared by pytest and the CLI).

    ``timing_margin=None`` skips the wall-clock comparison entirely --
    the CI smoke suites measure a few milliseconds on shared runners,
    where a scheduling blip would fail the build with no code change.
    The functional gates (identical-or-better reductions, every
    composition verified) always apply; the strict ``<=`` perf gate
    runs on the full recorded suite.
    """
    minimizer = payload["minimizer"]
    assert minimizer["reductions_agree"], \
        "kernel minimizer must reduce at least as far as the legacy ones"
    if timing_margin is not None:
        budget = minimizer["legacy_total_s"] * timing_margin
        assert minimizer["kernel_total_s"] <= budget, \
            (f"kernel minimizer ({minimizer['kernel_total_s']}s) slower "
             f"than the implementations it replaced "
             f"({minimizer['legacy_total_s']}s x margin {timing_margin})")
        # the one-off view conversion is amortized across the executor,
        # harness and verify stage, so cold isn't held to <=; a 2x
        # budget still catches a gross conversion regression
        cold_budget = minimizer["legacy_total_s"] * 2.0 * timing_margin
        assert minimizer["kernel_cold_total_s"] <= cold_budget, \
            (f"cold kernel minimization incl. view conversion "
             f"({minimizer['kernel_cold_total_s']}s) blew the 2x budget "
             f"vs legacy ({minimizer['legacy_total_s']}s)")
    composition = payload["composition"]
    assert composition["verified"] == composition["designs"], \
        "every composed controller must be trace-equivalent to its STG"


def report(payload: dict) -> str:
    suite = payload["suite"]
    minimizer = payload["minimizer"]
    composition = payload["composition"]
    lines = ["Controller synthesis -- unified kernel at suite scale:"]
    lines.append(f"  suite               : {suite['graphs']} designs "
                 f"({suite['stg_states']} STG states, "
                 f"{suite['controller_fsms']} controller FSMs)")
    lines.append(f"  STG merge           : legacy "
                 f"{minimizer['legacy_stg_merge_s'] * 1e3:7.1f} ms | kernel "
                 f"{minimizer['kernel_stg_merge_s'] * 1e3:7.1f} ms")
    lines.append(f"  FSM minimize        : legacy "
                 f"{minimizer['legacy_fsm_minimize_s'] * 1e3:7.1f} ms | "
                 f"kernel {minimizer['kernel_fsm_minimize_s'] * 1e3:7.1f} ms")
    lines.append(f"  kernel speedup      : {minimizer['speedup']}x "
                 f"(best of {minimizer['timing_rounds']} rounds; cold "
                 f"incl. one-off view conversion "
                 f"{minimizer['kernel_cold_total_s'] * 1e3:.1f} ms, "
                 f"shared with executor/harness/verify)")
    lines.append(f"  compose + verify    : "
                 f"{composition['compose_s'] * 1e3:7.1f} ms + "
                 f"{composition['verify_s'] * 1e3:7.1f} ms, "
                 f"{composition['verified']}/{composition['designs']} "
                 f"equivalent ({composition['environments']} environments, "
                 f"{composition['starts_checked']} starts checked)")
    return "\n".join(lines)


def test_controller_synthesis_benchmark(benchmark, run_once):
    payload = run_once(benchmark, measure)
    assert payload["suite"]["workload_graphs"] >= 50
    check(payload)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print("\n" + report(payload))
    print(f"  results -> {RESULTS_PATH.name}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Minimize + compose + verify controllers at suite scale")
    parser.add_argument("--graphs", type=int, default=DEFAULT_GRAPHS,
                        help="workload suite size (default %(default)s)")
    parser.add_argument("--seed", type=int, default=SUITE_SEED,
                        help="suite seed (default %(default)s)")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_controller_synthesis.json "
                             "(CI smoke runs)")
    args = parser.parse_args(argv)
    payload = measure(args.graphs, args.seed)
    check(payload,
          timing_margin=1.0 if args.graphs >= DEFAULT_GRAPHS else None)
    if not args.no_write:
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(report(payload))
    if not args.no_write:
        print(f"  results -> {RESULTS_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
