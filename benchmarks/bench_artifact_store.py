"""Persistent artifact store: warm restarts across *processes*.

Drives the same :func:`repro.workloads.workload_suite` sweep twice
through the sharded backend, each time in a **fresh Python process**
(``subprocess`` child re-invoking this file in ``--sweep`` mode), with
both runs pointed at one on-disk artifact store.  Persists the evidence
to ``BENCH_artifact_store.json`` at the repo root:

* ``sweeps`` -- wall-clock of the cold run (empty store) vs the warm
  restart (fresh process, populated store), plus the distinct child
  pids proving the warm run really did restart the process;
* ``bit_identity_gate`` -- both store-backed runs must reproduce the
  storeless serial reference exactly: outcomes, points, Pareto front
  and ranking order (the acceptance criterion of the store refactor);
* ``warm_start_gate`` -- the warm restart must report a >= 0.5 L2 hit
  rate (in practice ~1.0: every stage lookup served from the store,
  zero stages re-run) with zero cold-cache fallbacks;
* ``store`` -- post-sweep store integrity: every record on disk decodes
  and verifies, nothing sits in quarantine.

Runs under pytest-benchmark (``pytest benchmarks/bench_artifact_store
.py``) or standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_artifact_store.py --designs 12
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.flow import BatchRunner, FlowJob, map_reduce_sweep
from repro.partition import GreedyPartitioner
from repro.platform import minimal_board
from repro.store import ArtifactStore
from repro.workloads import workload_suite

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_PATH = REPO_ROOT / "BENCH_artifact_store.json"

DEFAULT_DESIGNS = 64
DEFAULT_WORKERS = 4
SUITE_SEED = 29

#: Acceptance gate: the warm restart's share of stage lookups served by
#: the persistent tier.  Always enforced -- a fresh process against a
#: populated store has no excuse for recomputing.
L2_HIT_RATE_GATE = 0.5


def _jobs(specs):
    arch = minimal_board()
    return [FlowJob(workload=spec, arch=arch,
                    partitioner=GreedyPartitioner()) for spec in specs]


def _point_view(point):
    """JSON-stable projection of one design point (no wall-clock)."""
    return [point.label, point.graph, list(point.metrics),
            bool(point.feasible)]


def run_sweep(n_designs: int, seed: int, workers: int,
              store_path: str | None) -> dict:
    """One sharded sweep against ``store_path`` (the ``--sweep`` body)."""
    jobs = _jobs(workload_suite(n_designs, seed=seed))
    started = time.perf_counter()
    result = map_reduce_sweep(jobs, shards=workers, max_workers=workers,
                              store_path=store_path)
    seconds = time.perf_counter() - started
    return {
        "pid": os.getpid(),
        "seconds": round(seconds, 6),
        "ok": sum(o.ok for o in result.outcomes),
        "points": [_point_view(p) for p in result.points],
        "pareto": [_point_view(p) for p in result.pareto()],
        "ranked": [_point_view(p) for p in result.ranked()],
        "cache": result.shard_stats.cache,
    }


def fresh_process_sweep(n_designs: int, seed: int, workers: int,
                        store_path: str | os.PathLike) -> dict:
    """Run :func:`run_sweep` in a brand-new Python process.

    This is what "warm restart" means end to end: nothing survives but
    the store directory.  Shared with ``bench_shard_sweep`` for its
    restart-the-process assertion.
    """
    command = [sys.executable, str(Path(__file__).resolve()), "--sweep",
               "--designs", str(n_designs), "--seed", str(seed),
               "--workers", str(workers), "--store", os.fspath(store_path)]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    child = subprocess.run(command, capture_output=True, text=True, env=env)
    if child.returncode != 0:
        raise RuntimeError(f"child sweep failed "
                           f"(exit {child.returncode}):\n{child.stderr}")
    return json.loads(child.stdout)


def _serial_reference(specs) -> dict:
    """The storeless serial baseline every store-backed run must equal."""
    from repro.flow import ExplorationResult
    from repro.flow.batch import _point_from
    started = time.perf_counter()
    outcomes = BatchRunner(backend="serial").run(_jobs(specs))
    seconds = time.perf_counter() - started
    result = ExplorationResult(outcomes=outcomes)
    result.points = [_point_from(o) for o in outcomes if o.ok]
    result.failures = [o for o in outcomes if not o.ok]
    return {
        "seconds": round(seconds, 6),
        "ok": sum(o.ok for o in outcomes),
        "points": [_point_view(p) for p in result.points],
        "pareto": [_point_view(p) for p in result.pareto()],
        "ranked": [_point_view(p) for p in result.ranked()],
    }


def _identical(run: dict, reference: dict) -> bool:
    return all(run[view] == reference[view]
               for view in ("points", "pareto", "ranked")) \
        and run["ok"] == reference["ok"]


def _store_integrity(store_root: str | os.PathLike) -> dict:
    """Decode-verify every record left on disk after the sweeps."""
    store = ArtifactStore(store_root)
    verified = 0
    for key in store.keys():
        record = store.get(key)
        if record is not None and record.key == key:
            verified += 1
    stats = store.stats()
    return {"entries": stats["entries"],
            "bytes": stats["bytes"],
            "records_verified": verified,
            "quarantined": len(store.quarantined_files())}


def measure(n_designs: int = DEFAULT_DESIGNS, seed: int = SUITE_SEED,
            workers: int = DEFAULT_WORKERS) -> dict:
    specs = workload_suite(n_designs, seed=seed)
    reference = _serial_reference(specs)

    with tempfile.TemporaryDirectory(prefix="bench-artifact-store-") as root:
        store_path = Path(root) / "store"
        cold = fresh_process_sweep(n_designs, seed, workers, store_path)
        warm = fresh_process_sweep(n_designs, seed, workers, store_path)
        store = _store_integrity(store_path)

    warm_l2 = warm["cache"]["l2"]
    speedup = round(cold["seconds"] / warm["seconds"], 2) \
        if warm["seconds"] else None
    return {
        "suite": {"designs": len(specs), "seed": seed, "workers": workers,
                  "families": sorted({s.family for s in specs})},
        "host_cpus": os.cpu_count() or 1,
        "reference_serial_seconds": reference["seconds"],
        "sweeps": {
            "cold": {"seconds": cold["seconds"], "pid": cold["pid"],
                     "ok": cold["ok"], "cache": cold["cache"]},
            "warm": {"seconds": warm["seconds"], "pid": warm["pid"],
                     "ok": warm["ok"], "cache": warm["cache"]},
        },
        "process_restarted": cold["pid"] != warm["pid"]
        and cold["pid"] != os.getpid(),
        "warm_speedup_over_cold": speedup,
        "bit_identity_gate": {
            "cold_identical_to_serial": _identical(cold, reference),
            "warm_identical_to_serial": _identical(warm, reference),
        },
        "warm_start_gate": {
            "l2_hit_rate": round(
                warm_l2["hits"]
                / max(1, warm_l2["hits"] + warm_l2["misses"]), 4),
            "required": L2_HIT_RATE_GATE,
            "overall_hit_rate": warm["cache"]["hit_rate"],
            "cold_fallbacks": warm["cache"]["cold_fallbacks"],
        },
        "store": store,
    }


def check(payload: dict) -> None:
    """The artifact-store regression gate (shared by pytest and the CLI)."""
    identity = payload["bit_identity_gate"]
    assert identity["cold_identical_to_serial"], \
        "store-backed sweep must be bit-identical to the storeless serial"
    assert identity["warm_identical_to_serial"], \
        "warm restart must be bit-identical to the storeless serial"
    assert payload["process_restarted"], \
        "the warm sweep must have run in a fresh process"
    sweeps = payload["sweeps"]
    assert sweeps["cold"]["ok"] == payload["suite"]["designs"]
    assert sweeps["warm"]["ok"] == sweeps["cold"]["ok"]
    gate = payload["warm_start_gate"]
    assert gate["l2_hit_rate"] >= gate["required"], \
        (f"fresh process against a populated store must report an L2 hit "
         f"rate >= {gate['required']}, got {gate['l2_hit_rate']}")
    assert gate["cold_fallbacks"] == 0, \
        "no pooled worker may fall back to an uninitialized cache"
    store = payload["store"]
    assert store["records_verified"] == store["entries"], \
        "every record on disk must decode and verify"
    assert store["quarantined"] == 0
    assert store["entries"] > 0


def report(payload: dict) -> str:
    lines = ["Artifact store -- warm restarts across processes:"]
    suite = payload["suite"]
    sweeps = payload["sweeps"]
    gate = payload["warm_start_gate"]
    lines.append(f"  suite               : {suite['designs']} designs "
                 f"(seed {suite['seed']}, {suite['workers']} workers, "
                 f"{payload['host_cpus']} cpus)")
    lines.append(f"  sweep [cold store]  : "
                 f"{sweeps['cold']['seconds'] * 1e3:8.1f} ms "
                 f"(pid {sweeps['cold']['pid']})")
    lines.append(f"  sweep [warm restart]: "
                 f"{sweeps['warm']['seconds'] * 1e3:8.1f} ms "
                 f"(pid {sweeps['warm']['pid']}, "
                 f"{payload['warm_speedup_over_cold']}x over cold)")
    lines.append(f"  L2 hit rate         : {gate['l2_hit_rate']:.0%} "
                 f"(gate >= {gate['required']:.0%}, overall "
                 f"{gate['overall_hit_rate']:.0%})")
    identity = payload["bit_identity_gate"]
    lines.append(f"  identical to serial : cold "
                 f"{identity['cold_identical_to_serial']}, warm "
                 f"{identity['warm_identical_to_serial']}")
    store = payload["store"]
    lines.append(f"  store               : {store['entries']} records / "
                 f"{store['bytes'] / 1024:.1f} KiB, "
                 f"{store['records_verified']} verified, "
                 f"{store['quarantined']} quarantined")
    return "\n".join(lines)


def test_artifact_store_benchmark(benchmark, run_once):
    payload = run_once(benchmark, measure)
    assert payload["suite"]["designs"] >= DEFAULT_DESIGNS
    check(payload)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print("\n" + report(payload))
    print(f"  results -> {RESULTS_PATH.name}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Persistent artifact store: cold vs warm-restart sweeps")
    parser.add_argument("--designs", type=int, default=DEFAULT_DESIGNS,
                        help="suite size (default %(default)s)")
    parser.add_argument("--seed", type=int, default=SUITE_SEED,
                        help="suite seed (default %(default)s)")
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS,
                        help="shard/worker count (default %(default)s)")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_artifact_store.json "
                             "(CI smoke runs)")
    parser.add_argument("--sweep", action="store_true",
                        help="internal child mode: run one sharded sweep "
                             "against --store and print JSON to stdout")
    parser.add_argument("--store", default=None,
                        help="store root for --sweep mode")
    args = parser.parse_args(argv)
    if args.sweep:
        if args.store is None:
            parser.error("--sweep requires --store")
        print(json.dumps(run_sweep(args.designs, args.seed, args.workers,
                                   args.store)))
        return 0
    payload = measure(args.designs, args.seed, args.workers)
    check(payload)
    if not args.no_write:
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(report(payload))
    if not args.no_write:
        print(f"  results -> {RESULTS_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
