"""Paper Fig. 1: the COOL design flow.

Regenerates the flow picture as a stage list with measured wall time
per stage, running the complete pipeline (specification text ->
elaboration -> partitioning -> co-synthesis -> controller synthesis ->
HLS -> code generation -> co-simulation) on the fuzzy controller.
"""

from repro.apps.fuzzy import fuzzy_spec_text
from repro.flow import CoolFlow
from repro.graph import execute
from repro.partition import GreedyPartitioner
from repro.platform import cool_board
from repro.spec import elaborate_text

STAGES = ("validate", "partitioning", "stg", "communication", "hls",
          "controllers", "codegen", "cosim")


def full_flow():
    graph = elaborate_text(fuzzy_spec_text(verbose=False))
    stimuli = {"err": [25], "derr": [(-50) & 0xFFFF]}
    result = CoolFlow(cool_board(),
                      partitioner=GreedyPartitioner()).run(
        graph, stimuli=stimuli)
    return graph, stimuli, result


def test_fig1_design_flow(benchmark, run_once):
    graph, stimuli, result = run_once(benchmark, full_flow)

    # every stage of the paper's flow diagram executed
    for stage in STAGES:
        assert stage in result.stage_seconds

    # functional end-to-end correctness gates the whole figure
    assert result.sim_result.outputs["u"] == execute(graph, stimuli)["u"]

    print("\nFig. 1 -- design flow stages (measured):")
    for stage in STAGES:
        print(f"  {stage:<16} {result.stage_seconds[stage] * 1000:>9.2f} ms")
    print(f"  {'TOTAL':<16} "
          f"{sum(result.stage_seconds.values()) * 1000:>9.2f} ms")
