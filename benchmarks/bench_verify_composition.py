"""Verification v3 at suite scale: the symbolic fixpoint tier.

Drives :func:`repro.controllers.verify_composition` over the same
52-design population as ``bench_controller_synthesis`` (50-graph
workload suite + two larger random graphs), plus -- at full suite size
-- the 200/500-node scale designs the explicit tier could never
materialize, and persists the numbers to
``BENCH_verify_composition.json`` at the repo root:

* ``symbolic`` -- the default tier: how many designs were *proved*
  trace-equivalent to their minimized STG under every admissible
  environment and every stream length (restart loop included), step
  system sizes, determinized pair counts, per-design timings for the
  five slowest proofs, and wall-clock.
* ``explicit_crosscheck`` -- the retired default re-run as an oracle:
  every suite design goes through ``strategy="exhaustive"`` (the
  materialized bounded product) and its verdict must be identical to
  the symbolic one.  Its wall-clock is the baseline the headline
  speedup is measured against.
* ``scale`` -- the designs beyond the explicit tier's reach: 200- and
  500-node random task graphs proved by the unbounded symbolic tier
  alone (tens of thousands of product states, > ``max_states``).
* ``tiers`` -- per-tier design counts over everything verified.  A
  design falling back to sampling is a regression: the symbolic tier
  has no state bound, so coverage is gated at 1.0.
* ``sampled_baseline`` -- the environment-sampling tier forced on
  every suite design (the cost floor).

The functional gates always apply: every design equivalent under every
strategy, symbolic and explicit verdicts identical, zero fallbacks.
The timing gates -- the ``random_80_80`` symbolic proof at least 3x
faster than the committed explicit baseline, and a >= 500-node design
proved -- run only at full suite size, like the other benches
(millisecond timings on shared CI runners are noise).

Runs under pytest-benchmark or standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_verify_composition.py --graphs 8
"""

import argparse
import json
import random
import sys
import time
from pathlib import Path

from bench_controller_synthesis import _suite_designs
from repro.controllers import synthesize_system_controller, verify_composition
from repro.controllers.verify import DEFAULT_MAX_PRODUCT_STATES
from repro.estimate import CostModel
from repro.graph import from_mapping
from repro.platform import cool_board
from repro.schedule import list_schedule
from repro.stg import build_stg, minimize_stg
from repro.workloads import scale_suite

RESULTS_PATH = Path(__file__).resolve().parents[1] / \
    "BENCH_verify_composition.json"

DEFAULT_GRAPHS = 50
SUITE_SEED = 7
#: Beyond-``max_states`` designs the symbolic tier must prove alone;
#: they join the run at full suite size only (the 500-node proof walks
#: ~65k product states -- minutes, not CI-smoke material).
LARGE_SCALE_SIZES = (200, 500)
#: The committed explicit-tier wall-clock for ``random_80_80`` (the
#: pre-symbolic BENCH baseline) and the speedup the symbolic fixpoint
#: must hold against it.
EXPLICIT_80_BASELINE_S = 4.692301
MIN_80_SPEEDUP = 3.0
#: Per-design slow list depth persisted in the JSON.
SLOWEST_KEPT = 5
#: Fraction of the suite the symbolic tier must actually prove.  It
#: has no state bound, so any fallback to sampling is a regression.
MIN_SYMBOLIC_COVERAGE = 1.0


def _scale_designs(sizes):
    """(graph, schedule) for the beyond-max_states scale-suite specs.

    Same spread-the-board random mapping as the scale graphs of
    ``bench_controller_synthesis`` -- maximal parallelism across the
    COOL board's units is what drives the reachable product past
    ``max_states``.
    """
    big = cool_board()
    designs = []
    for spec in scale_suite(sizes):
        graph = spec.build()
        rng = random.Random(spec.nodes)
        mapping = {node.name: rng.choice(big.resource_names)
                   for node in graph.internal_nodes()}
        partition = from_mapping(graph, mapping, big.fpga_names,
                                 big.processor_names)
        designs.append((graph, list_schedule(partition,
                                             CostModel(graph, big))))
    return designs


def _prepare(designs):
    return [(graph, *_stg_and_controller(schedule))
            for graph, schedule in designs]


def _stg_and_controller(schedule):
    mini, _ = minimize_stg(build_stg(schedule))
    return mini, synthesize_system_controller(mini)


def _timed_checks(prepared, strategy, max_states):
    out = []
    for graph, mini, controller in prepared:
        started = time.perf_counter()
        check = verify_composition(mini, controller, graph=graph,
                                   max_states=max_states,
                                   strategy=strategy)
        out.append((graph.name, check, time.perf_counter() - started))
    return out


def measure(n_graphs: int = DEFAULT_GRAPHS, seed: int = SUITE_SEED,
            max_states: int = DEFAULT_MAX_PRODUCT_STATES,
            scale_sizes: tuple = ()) -> dict:
    prepared = _prepare(_suite_designs(n_graphs, seed))
    scale_prepared = _prepare(_scale_designs(scale_sizes))

    auto_started = time.perf_counter()
    per_design = _timed_checks(prepared, "auto", max_states)
    auto_s = time.perf_counter() - auto_started

    explicit = _timed_checks(prepared, "exhaustive", max_states)
    explicit_s = sum(seconds for _, _, seconds in explicit)
    agreeing = sum(a.equivalent == b.equivalent
                   for (_, a, _), (_, b, _) in zip(per_design, explicit))

    scale_per_design = _timed_checks(scale_prepared, "auto", max_states)

    sampled_started = time.perf_counter()
    sampled_checks = [verify_composition(mini, controller, graph=graph,
                                         strategy="sampled")
                      for graph, mini, controller in prepared]
    sampled_s = time.perf_counter() - sampled_started

    proved = [(name, check, seconds) for name, check, seconds in per_design
              if check.tier == "symbolic"]
    fallbacks = [(name, check) for name, check, _ in per_design
                 if check.tier == "sampled"]
    symbolic_s = sum(seconds for _, _, seconds in proved)
    slowest = sorted(proved, key=lambda entry: entry[2],
                     reverse=True)[:SLOWEST_KEPT]
    seconds_of = {name: seconds for name, _, seconds in per_design}
    explicit_seconds_of = {name: seconds for name, _, seconds in explicit}
    tier_counts: dict = {}
    for _, check, _ in per_design + scale_per_design:
        tier_counts[check.tier] = tier_counts.get(check.tier, 0) + 1
    return {
        "suite": {
            "graphs": len(prepared),
            "workload_graphs": n_graphs,
            "seed": seed,
            "max_states": max_states,
            "scale_sizes": list(scale_sizes),
        },
        "symbolic": {
            "proved": len(proved),
            "equivalent": sum(check.equivalent
                              for _, check, _ in proved),
            "verify_s": round(symbolic_s, 6),
            "product_states": sum(check.product_states
                                  for _, check, _ in proved),
            "largest_product": max((check.product_states
                                    for _, check, _ in proved), default=0),
            "projections": sum(check.projections_checked
                               for _, check, _ in proved),
            "pairs_checked": sum(check.pairs_checked
                                 for _, check, _ in proved),
            "starts_checked": sum(check.starts_checked
                                  for _, check, _ in proved),
            "oracle_agreed": sum(check.oracle == "agrees"
                                 for _, check, _ in proved),
            "slowest_designs": [{
                "name": name,
                "seconds": round(seconds, 6),
                "product_states": check.product_states,
                "pairs_checked": check.pairs_checked,
            } for name, check, seconds in slowest],
        },
        "tiers": tier_counts,
        "explicit_crosscheck": {
            "designs": len(explicit),
            "agreeing": agreeing,
            "verify_s": round(explicit_s, 6),
            "random_80_80": None if "random_80_80" not in seconds_of else {
                "symbolic_s": round(seconds_of["random_80_80"], 6),
                "explicit_s": round(
                    explicit_seconds_of["random_80_80"], 6),
                "baseline_s": EXPLICIT_80_BASELINE_S,
                "speedup_x": round(
                    EXPLICIT_80_BASELINE_S / seconds_of["random_80_80"], 2),
            },
        },
        "scale": {
            "designs": [{
                "name": name,
                "seconds": round(seconds, 6),
                "tier": check.tier,
                "equivalent": check.equivalent,
                "product_states": check.product_states,
                "pairs_checked": check.pairs_checked,
                "projections": check.projections_checked,
                "bdd_nodes": check.bdd_nodes,
                "bdd_ite_hit_rate": check.bdd_ite_hit_rate,
            } for name, check, seconds in scale_per_design],
            "largest_proved_states": max(
                (check.product_states for _, check, _ in scale_per_design
                 if check.tier == "symbolic" and check.equivalent),
                default=0),
        },
        "fallback": {
            "designs": len(fallbacks),
            "all_reasons_recorded": all(check.fallback_reason
                                        for _, check in fallbacks),
            "equivalent": sum(check.equivalent for _, check in fallbacks),
            "names": sorted(name for name, _ in fallbacks),
        },
        "sampled_baseline": {
            "verify_s": round(sampled_s, 6),
            "equivalent": sum(check.equivalent
                              for check in sampled_checks),
            "designs": len(sampled_checks),
            "environments": sampled_checks[0].environments
            if sampled_checks else 0,
            "activations": sampled_checks[0].activations
            if sampled_checks else 0,
        },
        "auto_total_s": round(auto_s, 6),
    }


def check(payload: dict, timing_margin: float | None = 1.0) -> None:
    """The verification-v3 gate (shared by pytest and the CLI).

    ``timing_margin=None`` skips the wall-clock and scale gates (CI
    smoke on shared runners); the functional gates always apply.
    """
    symbolic = payload["symbolic"]
    crosscheck = payload["explicit_crosscheck"]
    fallback = payload["fallback"]
    sampled = payload["sampled_baseline"]
    scale = payload["scale"]
    designs = payload["suite"]["graphs"]

    assert symbolic["equivalent"] == symbolic["proved"], \
        "a symbolic-tier design failed the equivalence proof"
    assert fallback["designs"] == 0, \
        (f"the unbounded symbolic tier fell back to sampling on "
         f"{fallback['names']}")
    assert sampled["equivalent"] == sampled["designs"], \
        "a design failed the forced sampled tier"
    assert symbolic["proved"] + fallback["designs"] == designs
    assert symbolic["proved"] >= MIN_SYMBOLIC_COVERAGE * designs, \
        (f"symbolic tier only covered {symbolic['proved']}/{designs} "
         f"designs (min {MIN_SYMBOLIC_COVERAGE:.0%})")
    assert crosscheck["agreeing"] == crosscheck["designs"] == designs, \
        "symbolic and explicit tiers disagree on a suite verdict"
    for entry in scale["designs"]:
        assert entry["tier"] == "symbolic" and entry["equivalent"], \
            f"scale design {entry['name']} not proved symbolically"
    if timing_margin is not None:
        assert scale["largest_proved_states"] > \
            payload["suite"]["max_states"], \
            "no beyond-max_states design proved at full suite size"
        assert max(entry["product_states"] for entry in scale["designs"]) \
            >= 50_000, "the 500-node scale design is missing"
        speed = crosscheck["random_80_80"]
        assert speed is not None, "random_80_80 missing from the suite"
        budget = EXPLICIT_80_BASELINE_S / MIN_80_SPEEDUP * timing_margin
        assert speed["symbolic_s"] <= budget, \
            (f"random_80_80 symbolic proof ({speed['symbolic_s']}s) lost "
             f"the {MIN_80_SPEEDUP}x speedup vs the explicit baseline "
             f"({EXPLICIT_80_BASELINE_S}s)")


def report(payload: dict) -> str:
    suite = payload["suite"]
    symbolic = payload["symbolic"]
    crosscheck = payload["explicit_crosscheck"]
    fallback = payload["fallback"]
    sampled = payload["sampled_baseline"]
    lines = ["Verification v3 -- symbolic fixpoint tier at suite scale:"]
    lines.append(f"  suite               : {suite['graphs']} designs "
                 f"+ {len(payload['scale']['designs'])} scale "
                 f"(explicit max_states {suite['max_states']})")
    lines.append(f"  symbolic tier       : {symbolic['proved']} proved in "
                 f"{symbolic['verify_s'] * 1e3:8.1f} ms "
                 f"({symbolic['product_states']} product states, "
                 f"{symbolic['pairs_checked']} pairs, "
                 f"{symbolic['projections']} projections, "
                 f"{symbolic['oracle_agreed']} oracle-agreed)")
    for entry in symbolic["slowest_designs"]:
        lines.append(f"    slow proof        : {entry['name']} "
                     f"({entry['seconds'] * 1e3:.1f} ms, "
                     f"{entry['product_states']} states, "
                     f"{entry['pairs_checked']} pairs)")
    lines.append(f"  explicit crosscheck : {crosscheck['agreeing']}/"
                 f"{crosscheck['designs']} verdicts identical in "
                 f"{crosscheck['verify_s'] * 1e3:8.1f} ms")
    if crosscheck["random_80_80"]:
        speed = crosscheck["random_80_80"]
        lines.append(f"  random_80_80        : {speed['symbolic_s']}s "
                     f"symbolic vs {speed['baseline_s']}s committed "
                     f"explicit ({speed['speedup_x']}x)")
    for entry in payload["scale"]["designs"]:
        lines.append(f"  scale proof         : {entry['name']} "
                     f"({entry['seconds']:.1f} s, "
                     f"{entry['product_states']} states, "
                     f"{entry['pairs_checked']} pairs, "
                     f"{entry['bdd_nodes']} BDD nodes)")
    lines.append(f"  tiers               : {payload['tiers']} "
                 f"(fallbacks {fallback['designs']})")
    lines.append(f"  sampled baseline    : {sampled['designs']} designs in "
                 f"{sampled['verify_s'] * 1e3:8.1f} ms "
                 f"({sampled['environments']} environments x "
                 f"{sampled['activations']} activations)")
    return "\n".join(lines)


def test_verify_composition_benchmark(benchmark, run_once):
    payload = run_once(benchmark, measure)
    assert payload["suite"]["workload_graphs"] >= 50
    check(payload, timing_margin=None)
    print("\n" + report(payload))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Symbolic composition verification at suite scale")
    parser.add_argument("--graphs", type=int, default=DEFAULT_GRAPHS,
                        help="workload suite size (default %(default)s)")
    parser.add_argument("--seed", type=int, default=SUITE_SEED,
                        help="suite seed (default %(default)s)")
    parser.add_argument("--max-states", type=int,
                        default=DEFAULT_MAX_PRODUCT_STATES,
                        help="explicit-tier product bound "
                             "(default %(default)s)")
    parser.add_argument("--no-scale", action="store_true",
                        help="skip the 200/500-node scale proofs even at "
                             "full suite size")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_verify_composition.json "
                             "(CI smoke runs)")
    args = parser.parse_args(argv)
    full = args.graphs >= DEFAULT_GRAPHS
    scale_sizes = LARGE_SCALE_SIZES if full and not args.no_scale else ()
    payload = measure(args.graphs, args.seed, args.max_states,
                      scale_sizes=scale_sizes)
    check(payload, timing_margin=1.0 if scale_sizes else None)
    if not args.no_write:
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(report(payload))
    if not args.no_write:
        print(f"  results -> {RESULTS_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
