"""Verification v2 at suite scale: the tiered composition check.

Drives :func:`repro.controllers.verify_composition` over the same
52-design population as ``bench_controller_synthesis`` (50-graph
workload suite + two larger random graphs) and persists the numbers to
``BENCH_verify_composition.json`` at the repo root:

* ``exhaustive`` -- the bisimulation tier: how many designs were
  *proved* trace-equivalent to their minimized STG under every
  admissible environment and every stream length (restart loop
  included), product/reference automaton sizes, projection counts and
  wall-clock.  Designs whose reachable product exceeds ``max_states``
  must fall back to the sampled tier *with a recorded reason* -- a
  silent fallback is a bug.
* ``sampled`` -- the environment-sampling tier forced on every design
  (the cost baseline, and the tier large designs actually get).

The functional gates always apply: every design equivalent under both
strategies, every fallback justified, and the exhaustive tier covering
the bulk of the suite.  The cost gate -- exhaustive wall-clock within
``EXHAUSTIVE_BUDGET_FACTOR`` x the sampled baseline -- runs only at
full suite size, like the other benches (millisecond timings on shared
CI runners are noise).

Runs under pytest-benchmark or standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_verify_composition.py --graphs 8
"""

import argparse
import json
import sys
import time
from pathlib import Path

from bench_controller_synthesis import _suite_designs
from repro.controllers import synthesize_system_controller, verify_composition
from repro.controllers.verify import DEFAULT_MAX_PRODUCT_STATES
from repro.stg import build_stg, minimize_stg

RESULTS_PATH = Path(__file__).resolve().parents[1] / \
    "BENCH_verify_composition.json"

DEFAULT_GRAPHS = 50
SUITE_SEED = 7
#: The exhaustive tier explores every admissible environment, so it is
#: allowed this much more wall-clock than the 3-environment sampler;
#: measured ~20x on the committed suite, gated with ~3x headroom.
EXHAUSTIVE_BUDGET_FACTOR = 60.0
#: Fraction of the suite the bisimulation tier must actually prove.
#: Since the packed projection classes + τ-chain compression landed the
#: whole suite (80-node scale graph included) fits max_states: any
#: fallback is a regression.
MIN_EXHAUSTIVE_COVERAGE = 1.0


def measure(n_graphs: int = DEFAULT_GRAPHS, seed: int = SUITE_SEED,
            max_states: int = DEFAULT_MAX_PRODUCT_STATES) -> dict:
    prepared = []
    for graph, schedule in _suite_designs(n_graphs, seed):
        mini, _ = minimize_stg(build_stg(schedule))
        prepared.append((graph, mini,
                         synthesize_system_controller(mini)))

    per_design = []
    auto_started = time.perf_counter()
    for graph, mini, controller in prepared:
        started = time.perf_counter()
        check = verify_composition(mini, controller, graph=graph,
                                   max_states=max_states)
        per_design.append((graph.name, check,
                           time.perf_counter() - started))
    auto_s = time.perf_counter() - auto_started

    sampled_started = time.perf_counter()
    sampled_checks = [verify_composition(mini, controller, graph=graph,
                                         strategy="sampled")
                      for graph, mini, controller in prepared]
    sampled_s = time.perf_counter() - sampled_started

    proved = [(name, check, seconds) for name, check, seconds in per_design
              if check.tier == "bisimulation"]
    fallbacks = [(name, check) for name, check, _ in per_design
                 if check.tier == "sampled"]
    exhaustive_s = sum(seconds for _, _, seconds in proved)
    slowest = max(proved, key=lambda entry: entry[2], default=None)
    return {
        "suite": {
            "graphs": len(prepared),
            "workload_graphs": n_graphs,
            "seed": seed,
            "max_states": max_states,
        },
        "exhaustive": {
            "proved": len(proved),
            "equivalent": sum(check.equivalent
                              for _, check, _ in proved),
            "verify_s": round(exhaustive_s, 6),
            "product_states": sum(check.product_states
                                  for _, check, _ in proved),
            "largest_product": max((check.product_states
                                    for _, check, _ in proved), default=0),
            "projections": sum(check.projections_checked
                               for _, check, _ in proved),
            "starts_checked": sum(check.starts_checked
                                  for _, check, _ in proved),
            "slowest_design": None if slowest is None else {
                "name": slowest[0],
                "seconds": round(slowest[2], 6),
                "product_states": slowest[1].product_states,
            },
        },
        "fallback": {
            "designs": len(fallbacks),
            "all_reasons_recorded": all(check.fallback_reason
                                        for _, check in fallbacks),
            "equivalent": sum(check.equivalent for _, check in fallbacks),
            "names": sorted(name for name, _ in fallbacks),
        },
        "sampled_baseline": {
            "verify_s": round(sampled_s, 6),
            "equivalent": sum(check.equivalent
                              for check in sampled_checks),
            "designs": len(sampled_checks),
            "environments": sampled_checks[0].environments
            if sampled_checks else 0,
            "activations": sampled_checks[0].activations
            if sampled_checks else 0,
        },
        "auto_total_s": round(auto_s, 6),
    }


def check(payload: dict, timing_margin: float | None = 1.0) -> None:
    """The verification-v2 gate (shared by pytest and the CLI).

    ``timing_margin=None`` skips the wall-clock comparison (CI smoke on
    shared runners); the functional gates always apply.
    """
    exhaustive = payload["exhaustive"]
    fallback = payload["fallback"]
    sampled = payload["sampled_baseline"]
    designs = payload["suite"]["graphs"]

    assert exhaustive["equivalent"] == exhaustive["proved"], \
        "a bisimulation-tier design failed the equivalence proof"
    assert fallback["equivalent"] == fallback["designs"], \
        "a fallback design failed the sampled equivalence check"
    assert sampled["equivalent"] == sampled["designs"], \
        "a design failed the forced sampled tier"
    assert exhaustive["proved"] + fallback["designs"] == designs
    assert fallback["all_reasons_recorded"], \
        "a design fell back to sampling without a recorded reason"
    assert exhaustive["proved"] >= MIN_EXHAUSTIVE_COVERAGE * designs, \
        (f"bisimulation tier only covered {exhaustive['proved']}/{designs} "
         f"designs (min {MIN_EXHAUSTIVE_COVERAGE:.0%})")
    assert exhaustive["largest_product"] <= payload["suite"]["max_states"]
    if timing_margin is not None:
        budget = sampled["verify_s"] * EXHAUSTIVE_BUDGET_FACTOR \
            * timing_margin
        assert exhaustive["verify_s"] <= budget, \
            (f"exhaustive tier ({exhaustive['verify_s']}s) blew its "
             f"{EXHAUSTIVE_BUDGET_FACTOR}x budget vs the sampled "
             f"baseline ({sampled['verify_s']}s)")


def report(payload: dict) -> str:
    suite = payload["suite"]
    exhaustive = payload["exhaustive"]
    fallback = payload["fallback"]
    sampled = payload["sampled_baseline"]
    lines = ["Verification v2 -- tiered composition check at suite scale:"]
    lines.append(f"  suite               : {suite['graphs']} designs "
                 f"(max_states {suite['max_states']})")
    lines.append(f"  bisimulation tier   : {exhaustive['proved']} proved in "
                 f"{exhaustive['verify_s'] * 1e3:8.1f} ms "
                 f"({exhaustive['product_states']} product states, "
                 f"{exhaustive['projections']} projections)")
    if exhaustive["slowest_design"]:
        slowest = exhaustive["slowest_design"]
        lines.append(f"  slowest proof       : {slowest['name']} "
                     f"({slowest['seconds'] * 1e3:.1f} ms, "
                     f"{slowest['product_states']} states)")
    lines.append(f"  fallback (sampled)  : {fallback['designs']} designs "
                 f"{fallback['names']}")
    lines.append(f"  sampled baseline    : {sampled['designs']} designs in "
                 f"{sampled['verify_s'] * 1e3:8.1f} ms "
                 f"({sampled['environments']} environments x "
                 f"{sampled['activations']} activations)")
    return "\n".join(lines)


def test_verify_composition_benchmark(benchmark, run_once):
    payload = run_once(benchmark, measure)
    assert payload["suite"]["workload_graphs"] >= 50
    check(payload)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print("\n" + report(payload))
    print(f"  results -> {RESULTS_PATH.name}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Tiered composition verification at suite scale")
    parser.add_argument("--graphs", type=int, default=DEFAULT_GRAPHS,
                        help="workload suite size (default %(default)s)")
    parser.add_argument("--seed", type=int, default=SUITE_SEED,
                        help="suite seed (default %(default)s)")
    parser.add_argument("--max-states", type=int,
                        default=DEFAULT_MAX_PRODUCT_STATES,
                        help="bisimulation-tier product bound "
                             "(default %(default)s)")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_verify_composition.json "
                             "(CI smoke runs)")
    args = parser.parse_args(argv)
    payload = measure(args.graphs, args.seed, args.max_states)
    check(payload,
          timing_margin=1.0 if args.graphs >= DEFAULT_GRAPHS else None)
    if not args.no_write:
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(report(payload))
    if not args.no_write:
        print(f"  results -> {RESULTS_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
