"""Scaling: co-synthesis cost over graph size.

The paper's pitch is a fully automatic flow measured in minutes; this
benchmark shows the reproduced co-synthesis core (schedule -> STG ->
minimization -> memory -> controller synthesis) scales to hundreds of
nodes in interactive time.
"""

import random
import time

from repro.apps import random_task_graph
from repro.controllers import synthesize_system_controller
from repro.estimate import CostModel
from repro.graph import from_mapping
from repro.platform import multi_board
from repro.schedule import list_schedule
from repro.stg import build_stg, minimize_stg, allocate_memory

SIZES = (20, 50, 100, 200)


def cosynthesis(n: int):
    arch = multi_board(2, 2)
    graph = random_task_graph(n, seed=n)
    rng = random.Random(n)
    mapping = {node.name: rng.choice(arch.resource_names)
               for node in graph.internal_nodes()}
    partition = from_mapping(graph, mapping, arch.fpga_names,
                             arch.processor_names)
    schedule = list_schedule(partition, CostModel(graph, arch))
    stg = build_stg(schedule)
    mini, report = minimize_stg(stg)
    memory_map = allocate_memory(schedule, arch)
    controller = synthesize_system_controller(mini)
    return report, memory_map, controller


def sweep():
    rows = []
    for n in SIZES:
        started = time.perf_counter()
        report, memory_map, controller = cosynthesis(n)
        elapsed = time.perf_counter() - started
        rows.append((n, report, memory_map, controller, elapsed))
    return rows


def test_scaling_cosynthesis(benchmark, run_once):
    rows = run_once(benchmark, sweep)

    print("\nScaling -- co-synthesis over graph size:")
    print(f"  {'nodes':>5} {'stg states':>10} {'ctl states':>10} "
          f"{'mem words':>9} {'time[s]':>8}")
    for n, report, memory_map, controller, elapsed in rows:
        assert controller.total_states > 0
        print(f"  {n:>5} {report.states_before:>10} "
              f"{controller.total_states:>10} "
              f"{memory_map.words_used:>9} {elapsed:>8.3f}")
        # interactive-time claim: even 200 nodes well below a minute
        assert elapsed < 60
