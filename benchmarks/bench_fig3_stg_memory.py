"""Paper Fig. 3: the STG and the memory allocation.

Regenerates both halves of the figure for the equalizer implementation:
the state/transition graph (3 states per node + reset states + global
X/R/D, then minimized) and the memory map with cells allocated from the
base address for every inter-unit transfer edge.
"""

from repro.apps import four_band_equalizer
from repro.estimate import CostModel
from repro.graph import from_mapping
from repro.platform import minimal_board
from repro.schedule import list_schedule
from repro.stg import (StateKind, allocate_memory, build_stg,
                       memory_map_text, minimize_stg, stg_summary_text)


def cosynthesize():
    graph = four_band_equalizer(words=16)
    arch = minimal_board()
    mapping = {n.name: "dsp0" for n in graph.internal_nodes()}
    mapping.update({"band0": "fpga0", "gain0": "fpga0", "band1": "fpga0"})
    partition = from_mapping(graph, mapping, arch.fpga_names,
                             arch.processor_names)
    schedule = list_schedule(partition, CostModel(graph, arch))
    stg = build_stg(schedule)
    mini, report = minimize_stg(stg)
    memory_map = allocate_memory(schedule, arch, reuse=True)
    return graph, partition, schedule, stg, mini, report, memory_map, arch


def test_fig3_stg_and_memory_allocation(benchmark, run_once):
    graph, partition, schedule, stg, mini, report, memory_map, arch = \
        run_once(benchmark, cosynthesize)

    n = len(graph.nodes)
    n_res = len(partition.resources_used)
    # the paper's construction: w/x/d per node, r per resource, X/R/D
    assert len(stg) == 3 * n + n_res + 3
    assert len(stg.states_of_kind(StateKind.WAIT)) == n
    # minimization reduces the state count
    assert report.states_after < report.states_before
    # every cut edge owns memory cells starting at the base address
    cut = {e.name for e in partition.cut_edges()}
    assert set(memory_map.cells) == cut
    assert all(c.address >= arch.memory.base_address
               for c in memory_map.cells.values())
    assert memory_map.validate() == []

    print("\nFig. 3 -- state/transition graph:")
    print("  " + stg_summary_text(stg) + "   (as built)")
    print("  " + stg_summary_text(mini) + "   (minimized, "
          f"{report.reduction:.0%} states removed)")
    print("\nFig. 3 -- memory allocation:")
    print(memory_map_text(memory_map))
