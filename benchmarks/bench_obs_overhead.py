"""Observability overhead: tracing must be (nearly) free.

Every runtime layer is instrumented *unconditionally* -- the
``repro.obs`` span helpers no-op when no tracer is active -- so the one
number that decides whether that design is acceptable is the overhead
of (a) the disabled fast path and (b) a fully-collected trace.  Writes
``BENCH_obs_overhead.json`` at the repo root:

* ``overhead_gate`` -- the workload suite through the serial backend,
  instrumented (``activate(Tracer())``) vs uninstrumented
  (``activate(None)``), interleaved best-of-N so machine drift hits
  both arms equally.  Traced wall-clock must be within
  ``OVERHEAD_GATE`` (5%) of untraced;
* ``sharded_trace`` -- a store-backed ``map_reduce_sweep`` (4 shards)
  under an active tracer: the merged trace must contain in-worker spans
  from >= 2 distinct worker processes, every job span re-parented under
  its shard span, and ``render_report`` must render from the trace file
  on disk -- the end-to-end acceptance criterion of PR 10.

The traced sweep's JSONL is left at ``obs_trace.jsonl`` (repo root) for
CI to upload as an artifact; it is wall-clock data and is *not*
committed.

Runs under pytest-benchmark or standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --designs 12
"""

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

from repro.flow import BatchRunner, FlowJob, map_reduce_sweep
from repro.obs import (Tracer, activate, load_trace, render_report,
                       write_trace)
from repro.partition import GreedyPartitioner
from repro.platform import minimal_board
from repro.workloads import workload_suite

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_PATH = REPO_ROOT / "BENCH_obs_overhead.json"
TRACE_PATH = REPO_ROOT / "obs_trace.jsonl"

DEFAULT_DESIGNS = 52
DEFAULT_WORKERS = 4
SUITE_SEED = 29

#: Maximum tolerated slowdown of a fully-traced serial sweep over the
#: identical untraced sweep (best-of-N interleaved pairs).
OVERHEAD_GATE = 0.05

#: Interleaved measurement pairs; the minimum of each arm is compared.
REPEATS = 2


def _jobs(n_designs: int, seed: int):
    arch = minimal_board()
    return [FlowJob(workload=spec, arch=arch,
                    partitioner=GreedyPartitioner())
            for spec in workload_suite(n_designs, seed=seed)]


def _serial_pass(n_designs: int, seed: int, tracer):
    """One serial sweep under ``tracer`` (None = explicitly untraced)."""
    jobs = _jobs(n_designs, seed)  # fresh jobs: no cross-pass caching
    runner = BatchRunner(backend="serial")
    started = time.perf_counter()
    with activate(tracer):
        outcomes = runner.run(jobs)
    seconds = time.perf_counter() - started
    assert all(o.ok for o in outcomes)
    return seconds


def measure_overhead(n_designs: int, seed: int) -> dict:
    """Interleaved traced/untraced serial sweeps, best-of-N each arm."""
    untraced, traced, span_counts = [], [], []
    for _ in range(REPEATS):
        untraced.append(_serial_pass(n_designs, seed, None))
        tracer = Tracer()
        traced.append(_serial_pass(n_designs, seed, tracer))
        span_counts.append(len(tracer))
    best_untraced, best_traced = min(untraced), min(traced)
    overhead = (best_traced - best_untraced) / best_untraced
    return {
        "designs": n_designs,
        "repeats": REPEATS,
        "untraced_seconds": [round(s, 6) for s in untraced],
        "traced_seconds": [round(s, 6) for s in traced],
        "best_untraced_seconds": round(best_untraced, 6),
        "best_traced_seconds": round(best_traced, 6),
        "spans_per_traced_pass": span_counts[0],
        "overhead": round(overhead, 6),
        "gate": OVERHEAD_GATE,
    }


def measure_sharded_trace(n_designs: int, seed: int, workers: int,
                          trace_path: Path) -> dict:
    """Traced store-backed sharded sweep -> one merged trace on disk."""
    jobs = _jobs(n_designs, seed)
    tracer = Tracer()
    with tempfile.TemporaryDirectory(prefix="bench-obs-") as root:
        with activate(tracer):
            result = map_reduce_sweep(jobs, shards=workers,
                                      max_workers=workers,
                                      store_path=Path(root) / "store")
    assert all(o.ok for o in result.outcomes)
    write_trace(tracer, trace_path)

    spans = load_trace(trace_path)
    by_id = {s["span_id"]: s for s in spans}
    shard_spans = [s for s in spans if s["kind"] == "shard"]
    job_spans = [s for s in spans if s["kind"] == "job"]
    worker_pids = sorted({s["pid"] for s in spans
                          if s["pid"] != os.getpid()})
    jobs_under_shards = sum(
        1 for s in job_spans
        if by_id.get(s["parent_id"], {}).get("kind") == "shard")
    report_text = render_report(spans, top=5)
    return {
        "designs": n_designs,
        "shards": workers,
        "spans": len(spans),
        "kinds": sorted({s["kind"] for s in spans}),
        "coordinator_pid": os.getpid(),
        "worker_pids": worker_pids,
        "shard_spans": len(shard_spans),
        "job_spans": len(job_spans),
        "jobs_reparented_under_shards": jobs_under_shards,
        "report_rendered": "per-stage breakdown" in report_text,
        "trace_file": trace_path.name,
    }


def measure(n_designs: int = DEFAULT_DESIGNS, seed: int = SUITE_SEED,
            workers: int = DEFAULT_WORKERS,
            trace_path: Path = TRACE_PATH) -> dict:
    return {
        "host_cpus": os.cpu_count() or 1,
        "overhead_gate": measure_overhead(n_designs, seed),
        "sharded_trace": measure_sharded_trace(
            min(n_designs, 12), seed, workers, trace_path),
    }


def check(payload: dict) -> None:
    """The observability regression gate (shared by pytest and the CLI)."""
    gate = payload["overhead_gate"]
    assert gate["overhead"] <= gate["gate"], \
        (f"tracing overhead {gate['overhead']:.1%} exceeds the "
         f"{gate['gate']:.0%} gate")
    assert gate["spans_per_traced_pass"] > gate["designs"], \
        "a traced pass must collect at least one span per job"
    trace = payload["sharded_trace"]
    assert len(trace["worker_pids"]) >= 2, \
        (f"the merged trace must carry in-worker spans from >= 2 worker "
         f"processes, saw pids {trace['worker_pids']}")
    assert trace["shard_spans"] == trace["shards"]
    assert trace["job_spans"] == trace["designs"]
    assert trace["jobs_reparented_under_shards"] == trace["designs"], \
        "every worker job span must re-parent under its shard span"
    assert trace["report_rendered"], \
        "the report must render from the merged trace file"


def report(payload: dict) -> str:
    gate = payload["overhead_gate"]
    trace = payload["sharded_trace"]
    lines = ["Observability overhead and merged sharded trace:"]
    lines.append(f"  serial suite     : {gate['designs']} designs, "
                 f"best of {gate['repeats']} interleaved pairs "
                 f"({payload['host_cpus']} cpus)")
    lines.append(f"  untraced         : "
                 f"{gate['best_untraced_seconds'] * 1e3:8.1f} ms")
    lines.append(f"  traced           : "
                 f"{gate['best_traced_seconds'] * 1e3:8.1f} ms "
                 f"({gate['spans_per_traced_pass']} spans)")
    lines.append(f"  overhead         : {gate['overhead']:+.2%} "
                 f"(gate <= {gate['gate']:.0%})")
    lines.append(f"  sharded trace    : {trace['spans']} spans, kinds "
                 f"{trace['kinds']}")
    lines.append(f"  worker processes : {len(trace['worker_pids'])} "
                 f"(pids {trace['worker_pids']}), "
                 f"{trace['jobs_reparented_under_shards']}/"
                 f"{trace['job_spans']} jobs under shard spans")
    lines.append(f"  report           : rendered from "
                 f"{trace['trace_file']} = {trace['report_rendered']}")
    return "\n".join(lines)


def test_obs_overhead_benchmark(benchmark, run_once):
    payload = run_once(benchmark, measure)
    assert payload["overhead_gate"]["designs"] >= DEFAULT_DESIGNS
    check(payload)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print("\n" + report(payload))
    print(f"  results -> {RESULTS_PATH.name}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Tracing overhead gate and merged sharded trace")
    parser.add_argument("--designs", type=int, default=DEFAULT_DESIGNS,
                        help="suite size (default %(default)s)")
    parser.add_argument("--seed", type=int, default=SUITE_SEED,
                        help="suite seed (default %(default)s)")
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS,
                        help="shard/worker count (default %(default)s)")
    parser.add_argument("--trace-out", default=str(TRACE_PATH),
                        help="merged trace JSONL path (default %(default)s)")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_obs_overhead.json "
                             "(CI smoke runs; the trace file is still "
                             "written for artifact upload)")
    args = parser.parse_args(argv)
    payload = measure(args.designs, args.seed, args.workers,
                      Path(args.trace_out))
    check(payload)
    if not args.no_write:
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(report(payload))
    if not args.no_write:
        print(f"  results -> {RESULTS_PATH.name}")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
