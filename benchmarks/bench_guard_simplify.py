"""Symbolic guard simplification at suite scale.

Drives the guard engine over the same 52-design population as the
controller-synthesis and verification benches (50-graph workload suite
+ two larger random graphs) and persists the numbers to
``BENCH_guard_simplify.json`` at the repo root:

* ``literals`` -- VHDL guard literal counts of every controller FSM,
  baseline cascade vs the symbolic emitter (dead-branch pruning,
  same-successor merging, factored covers, reachability don't-cares
  harvested from the composition product).  Gated: the suite total
  must *strictly* drop and no single design may get worse.
* ``minimizer`` -- state counts of the kernel minimizer with syntactic
  vs guard-canonical (semantic) signatures.  Gated: the semantic
  refinement never ends up with more blocks.
* ``verification`` -- the soundness gate: every controller rebuilt
  with reachability-reduced guards re-proves trace equivalence to its
  minimized STG through the tiered composition check.
* ``cosim`` -- golden-model gate on a sample of designs: the full
  ``CoolFlow`` (guard simplification on) must co-simulate to exactly
  the golden interpreter's outputs.

Runs under pytest-benchmark or standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_guard_simplify.py --graphs 8
"""

import argparse
import json
import sys
import time
from pathlib import Path

from bench_controller_synthesis import _suite_designs
from repro.automata import AutomataError, refine_partition
from repro.codegen import check_vhdl, fsm_to_vhdl, guard_literal_count
from repro.controllers import (harvest_care_sets,
                               simplify_controller_guards,
                               synthesize_system_controller,
                               verify_composition)
from repro.controllers.verify import DEFAULT_MAX_PRODUCT_STATES
from repro.flow import CoolFlow
from repro.graph import execute
from repro.platform import minimal_board
from repro.stg import build_stg, minimize_stg
from repro.workloads import stimuli_for, workload_suite

RESULTS_PATH = Path(__file__).resolve().parents[1] / \
    "BENCH_guard_simplify.json"

DEFAULT_GRAPHS = 50
SUITE_SEED = 7
#: Full-flow co-simulations against the golden interpreter (the flow
#: re-runs partitioning/HLS/verify, so a sample keeps the bench fast).
COSIM_DESIGNS = 6


def measure(n_graphs: int = DEFAULT_GRAPHS, seed: int = SUITE_SEED,
            max_states: int = DEFAULT_MAX_PRODUCT_STATES) -> dict:
    designs = []
    for graph, schedule in _suite_designs(n_graphs, seed):
        mini, _ = minimize_stg(build_stg(schedule))
        designs.append((graph, mini, synthesize_system_controller(mini)))

    per_design = []
    rejected_vhdl = 0
    care_fallbacks = []
    emit_baseline_s = 0.0
    emit_simplified_s = 0.0
    for graph, mini, controller in designs:
        try:
            care = harvest_care_sets(controller, max_states=max_states)
        except AutomataError as exc:
            care = {}
            care_fallbacks.append((graph.name, str(exc)))

        started = time.perf_counter()
        baseline = {fsm.name: fsm_to_vhdl(fsm) for fsm in controller.fsms}
        emit_baseline_s += time.perf_counter() - started
        started = time.perf_counter()
        simplified = {fsm.name: fsm_to_vhdl(fsm, simplify=True,
                                            care_of=care.get(fsm.name))
                      for fsm in controller.fsms}
        emit_simplified_s += time.perf_counter() - started

        before = sum(map(guard_literal_count, baseline.values()))
        after = sum(map(guard_literal_count, simplified.values()))
        rejected_vhdl += sum(bool(check_vhdl(text))
                             for text in simplified.values())

        plain_states = guard_states = 0
        for fsm in controller.fsms:
            automaton = fsm.to_automaton()
            plain_states += refine_partition(automaton,
                                             ordered=True).n_blocks
            guard_states += refine_partition(automaton, ordered=True,
                                             guard_canonical=True).n_blocks

        # on a harvest fallback `care` is {}: pass it through verbatim
        # so simplify does NOT silently re-harvest at its default bound
        # (guards stay untouched, re-verification still runs)
        reduced, _stats = simplify_controller_guards(controller,
                                                     care_sets=care)
        check = verify_composition(mini, reduced, graph=graph,
                                   max_states=max_states)
        per_design.append({
            "name": graph.name,
            "literals_before": before,
            "literals_after": after,
            "states_plain": plain_states,
            "states_guard_canonical": guard_states,
            "reverified": check.equivalent,
            "tier": check.tier,
        })

    cosim_specs = workload_suite(min(COSIM_DESIGNS, n_graphs), seed=seed)
    cosim_ok = 0
    for spec in cosim_specs:
        graph = spec.build()
        stimuli = dict(stimuli_for(graph))
        result = CoolFlow(minimal_board()).run(graph, stimuli=stimuli)
        golden = execute(graph, stimuli)
        outputs_ok = all(result.sim_result.outputs[name] == values
                         for name, values in golden.items()
                         if name in result.sim_result.outputs)
        report = result.guard_report
        cosim_ok += bool(outputs_ok and report is not None
                         and report["guard_literals_after"]
                         <= report["guard_literals_before"])

    totals_before = sum(d["literals_before"] for d in per_design)
    totals_after = sum(d["literals_after"] for d in per_design)
    return {
        "suite": {
            "graphs": len(designs),
            "workload_graphs": n_graphs,
            "seed": seed,
            "max_states": max_states,
        },
        "literals": {
            "before": totals_before,
            "after": totals_after,
            "reduction": round(1 - totals_after / totals_before, 4)
            if totals_before else 0.0,
            "designs_reduced": sum(d["literals_after"]
                                   < d["literals_before"]
                                   for d in per_design),
            "designs_worse": sum(d["literals_after"]
                                 > d["literals_before"]
                                 for d in per_design),
            "rejected_vhdl": rejected_vhdl,
            "emit_baseline_s": round(emit_baseline_s, 6),
            "emit_simplified_s": round(emit_simplified_s, 6),
        },
        "minimizer": {
            "states_plain": sum(d["states_plain"] for d in per_design),
            "states_guard_canonical": sum(d["states_guard_canonical"]
                                          for d in per_design),
            "designs_larger": sum(d["states_guard_canonical"]
                                  > d["states_plain"]
                                  for d in per_design),
        },
        "verification": {
            "reverified": sum(d["reverified"] for d in per_design),
            "designs": len(per_design),
            "bisimulation_tier": sum(d["tier"] == "bisimulation"
                                     for d in per_design),
            "care_fallbacks": sorted(name for name, _ in care_fallbacks),
        },
        "cosim": {
            "designs": len(cosim_specs),
            "golden_ok": cosim_ok,
        },
    }


def check(payload: dict) -> None:
    """The guard-simplification gate (shared by pytest and the CLI)."""
    literals = payload["literals"]
    minimizer = payload["minimizer"]
    verification = payload["verification"]
    cosim = payload["cosim"]

    assert literals["after"] < literals["before"], \
        "guard simplification must strictly reduce suite VHDL literals"
    assert literals["designs_worse"] == 0, \
        "no design may end up with more guard literals"
    assert literals["rejected_vhdl"] == 0, \
        "every simplified VHDL file must pass the structural checker"
    assert minimizer["states_guard_canonical"] \
        <= minimizer["states_plain"], \
        "guard-canonical refinement may never be coarser than syntactic"
    assert minimizer["designs_larger"] == 0
    assert verification["reverified"] == verification["designs"], \
        "a simplified controller failed re-verification against its STG"
    assert cosim["golden_ok"] == cosim["designs"], \
        "a guard-simplified flow diverged from the golden interpreter"


def report(payload: dict) -> str:
    suite = payload["suite"]
    literals = payload["literals"]
    minimizer = payload["minimizer"]
    verification = payload["verification"]
    cosim = payload["cosim"]
    lines = ["Symbolic guard simplification at suite scale:"]
    lines.append(f"  suite               : {suite['graphs']} designs "
                 f"(max_states {suite['max_states']})")
    lines.append(f"  VHDL guard literals : {literals['before']} -> "
                 f"{literals['after']} "
                 f"({literals['reduction']:.0%} fewer; "
                 f"{literals['designs_reduced']}/{suite['graphs']} designs "
                 f"reduced, 0 worse)")
    lines.append(f"  emitter wall-clock  : baseline "
                 f"{literals['emit_baseline_s'] * 1e3:7.1f} ms | symbolic "
                 f"{literals['emit_simplified_s'] * 1e3:7.1f} ms")
    lines.append(f"  minimizer blocks    : syntactic "
                 f"{minimizer['states_plain']} | guard-canonical "
                 f"{minimizer['states_guard_canonical']}")
    lines.append(f"  re-verification     : "
                 f"{verification['reverified']}/{verification['designs']} "
                 f"equivalent "
                 f"({verification['bisimulation_tier']} proved by "
                 f"bisimulation; care fallbacks "
                 f"{verification['care_fallbacks']})")
    lines.append(f"  golden co-simulation: {cosim['golden_ok']}/"
                 f"{cosim['designs']} flows bit-exact")
    return "\n".join(lines)


def test_guard_simplify_benchmark(benchmark, run_once):
    payload = run_once(benchmark, measure)
    assert payload["suite"]["workload_graphs"] >= 50
    check(payload)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print("\n" + report(payload))
    print(f"  results -> {RESULTS_PATH.name}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Symbolic guard simplification at suite scale")
    parser.add_argument("--graphs", type=int, default=DEFAULT_GRAPHS,
                        help="workload suite size (default %(default)s)")
    parser.add_argument("--seed", type=int, default=SUITE_SEED,
                        help="suite seed (default %(default)s)")
    parser.add_argument("--max-states", type=int,
                        default=DEFAULT_MAX_PRODUCT_STATES,
                        help="care-harvest product bound "
                             "(default %(default)s)")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_guard_simplify.json "
                             "(CI smoke runs)")
    args = parser.parse_args(argv)
    payload = measure(args.graphs, args.seed, args.max_states)
    check(payload)
    if not args.no_write:
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(report(payload))
    if not args.no_write:
        print(f"  results -> {RESULTS_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
