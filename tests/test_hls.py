"""Unit + property tests for the high-level synthesis substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import fuzzy_controller
from repro.graph import from_mapping, make_node
from repro.hls import (Dfg, HlsError, alap_schedule, allocate_for_latency,
                       allocate_minimal, asap_schedule, bind,
                       datapath_area_clbs, expand_node,
                       force_directed_schedule, list_schedule_ops,
                       synthesize_node, synthesize_resource)
from repro.platform import cool_board, xc4005


def fir_node(taps=4, words=8):
    return make_node("f", "fir", {"taps": tuple(range(1, taps + 1))},
                     words=words)


def chain_dfg(length=5, category="add"):
    dfg = Dfg("chain")
    prev = None
    for _ in range(length):
        prev = dfg.add_op(category, (prev,) if prev is not None else ())
    return dfg


class TestDfg:
    def test_add_op_dependency_check(self):
        dfg = Dfg("t")
        with pytest.raises(HlsError):
            dfg.add_op("add", (42,))

    def test_topological_order(self):
        dfg = chain_dfg(4)
        assert dfg.topological_order() == [0, 1, 2, 3]

    def test_critical_path(self):
        dfg = chain_dfg(5, "mul")
        assert dfg.critical_path(lambda c: 2) == 10

    def test_categories(self):
        dfg = Dfg("t")
        dfg.add_op("add")
        dfg.add_op("add")
        dfg.add_op("mul")
        assert dfg.categories() == {"add": 2, "mul": 1}


class TestExpand:
    def test_mov_dropped(self):
        node = make_node("c", "copy", words=4)
        assert len(expand_node(node)) == 0

    def test_op_counts_match_mix(self):
        node = fir_node(taps=4, words=8)
        dfg = expand_node(node)
        # 4 taps x 8 words MACs (movs dropped)
        assert dfg.categories() == {"mac": 32}

    def test_lane_parallelism(self):
        node = fir_node(taps=4, words=8)
        dfg = expand_node(node)
        fpga = xc4005()
        # 8 independent lanes: with 8 FUs the critical path is 4 MACs
        assert dfg.critical_path(fpga.latency_for) == \
            4 * fpga.latency_for("mac")


class TestSchedulers:
    @pytest.fixture
    def fir_dfg(self):
        return expand_node(fir_node(taps=4, words=8))

    def test_asap_respects_deps(self, fir_dfg):
        fpga = xc4005()
        schedule = asap_schedule(fir_dfg, fpga.latency_for)
        assert schedule.validate() == []

    def test_alap_not_longer_than_deadline(self, fir_dfg):
        fpga = xc4005()
        asap = asap_schedule(fir_dfg, fpga.latency_for)
        alap = alap_schedule(fir_dfg, fpga.latency_for,
                             deadline=asap.length + 10)
        assert alap.length <= asap.length + 10
        assert alap.validate() == []

    def test_alap_infeasible_deadline(self, fir_dfg):
        with pytest.raises(HlsError):
            alap_schedule(fir_dfg, xc4005().latency_for, deadline=1)

    def test_list_schedule_respects_fu_limits(self, fir_dfg):
        fpga = xc4005()
        for n_fus in (1, 2, 4):
            schedule = list_schedule_ops(fir_dfg, fpga.latency_for,
                                         {"mac": n_fus})
            assert schedule.validate({"mac": n_fus}) == []

    def test_more_fus_never_slower(self, fir_dfg):
        fpga = xc4005()
        lengths = [list_schedule_ops(fir_dfg, fpga.latency_for,
                                     {"mac": n}).length
                   for n in (1, 2, 4, 8)]
        assert lengths == sorted(lengths, reverse=True)

    def test_single_fu_length_is_serial(self, fir_dfg):
        fpga = xc4005()
        schedule = list_schedule_ops(fir_dfg, fpga.latency_for, {"mac": 1})
        assert schedule.length == 32 * fpga.latency_for("mac")

    def test_missing_fu_limit_rejected(self, fir_dfg):
        with pytest.raises(HlsError):
            list_schedule_ops(fir_dfg, xc4005().latency_for, {})

    def test_force_directed_valid(self, fir_dfg):
        fpga = xc4005()
        schedule = force_directed_schedule(fir_dfg, fpga.latency_for)
        assert [p for p in schedule.validate() if "starts before" in p] == []

    def test_force_directed_balances_usage(self, fir_dfg):
        fpga = xc4005()
        asap = asap_schedule(fir_dfg, fpga.latency_for)
        forced = force_directed_schedule(fir_dfg, fpga.latency_for)
        # same latency bound, but peak FU demand must not be worse
        assert forced.fu_usage()["mac"] <= asap.fu_usage()["mac"]


class TestAllocation:
    def test_minimal_one_per_category(self):
        dfg = expand_node(fir_node())
        assert allocate_minimal(dfg) == {"mac": 1}

    def test_allocate_for_latency_adds_fus(self):
        fpga = xc4005()
        dfg = expand_node(fir_node(taps=4, words=8))
        serial = list_schedule_ops(dfg, fpga.latency_for, {"mac": 1}).length
        allocation = allocate_for_latency(dfg, fpga.latency_for,
                                          fpga.area_for,
                                          target_latency=serial // 3)
        assert allocation["mac"] >= 2

    def test_unreachable_latency_raises(self):
        fpga = xc4005()
        dfg = expand_node(fir_node(taps=8, words=1))  # one serial lane
        with pytest.raises(HlsError):
            allocate_for_latency(dfg, fpga.latency_for, fpga.area_for,
                                 target_latency=2, max_fus_per_category=4)


class TestBinding:
    def test_fu_counts_match_schedule_peak(self):
        fpga = xc4005()
        dfg = expand_node(fir_node(taps=4, words=8))
        schedule = list_schedule_ops(dfg, fpga.latency_for, {"mac": 3})
        binding = bind(schedule)
        assert binding.fu_counts["mac"] <= 3

    def test_no_fu_double_booking(self):
        fpga = xc4005()
        dfg = expand_node(fir_node(taps=4, words=8))
        schedule = list_schedule_ops(dfg, fpga.latency_for, {"mac": 2})
        binding = bind(schedule)
        for category, count in binding.fu_counts.items():
            for index in range(count):
                ops = binding.ops_on_fu(category, index)
                slots = sorted((schedule.start[u],
                                schedule.start[u]
                                + schedule.latency_of[category])
                               for u in ops)
                for (s1, e1), (s2, e2) in zip(slots, slots[1:]):
                    assert s2 >= e1

    def test_register_lifetimes_disjoint(self):
        fpga = xc4005()
        dfg = expand_node(fir_node(taps=4, words=4))
        schedule = list_schedule_ops(dfg, fpga.latency_for, {"mac": 2})
        binding = bind(schedule)
        regs: dict[int, list[int]] = {}
        for uid, reg in binding.register_of.items():
            regs.setdefault(reg, []).append(uid)
        # registers exist and are reused (fewer registers than values)
        assert binding.register_count <= len(dfg)


class TestSynthesizeNode:
    def test_fir_fits_xc4005(self):
        result = synthesize_node(fir_node(taps=5, words=16), xc4005())
        assert 0 < result.area_clbs <= 196
        assert result.latency_cycles > 0

    def test_pure_move_node_degenerates(self):
        node = make_node("c", "copy", words=4)
        result = synthesize_node(node, xc4005())
        assert result.area_clbs == 1
        assert result.latency_cycles == 1

    def test_quick_estimate_brackets_hls(self):
        """The pre-partitioning estimator must be in the HLS ballpark."""
        from repro.estimate import hw_area_clbs, hw_cycles
        fpga = xc4005()
        for node in (fir_node(taps=5, words=16),
                     make_node("d", "defuzz",
                               {"centroids": (0, 50, 100)}, words=1),
                     make_node("g", "gain", {"factor": 3}, words=8)):
            estimate = hw_cycles(node, fpga)
            actual = synthesize_node(node, fpga).latency_cycles
            assert actual <= 4 * estimate + 8
            assert estimate <= 4 * actual + 8
            est_area = hw_area_clbs(node, fpga)
            act_area = synthesize_node(node, fpga).area_clbs
            assert act_area <= 4 * est_area
            assert est_area <= 4 * act_area + 8

    def test_target_latency_reduces_cycles(self):
        fpga = xc4005()
        node = fir_node(taps=4, words=8)
        lazy = synthesize_node(node, fpga)
        target = lazy.latency_cycles // 2
        eager = synthesize_node(node, fpga, target_latency=target)
        assert eager.latency_cycles <= target
        assert eager.area_clbs >= lazy.area_clbs

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(HlsError):
            synthesize_node(fir_node(), xc4005(), scheduler="magic")


class TestSynthesizeResource:
    def test_sharing_cheaper_than_sum(self):
        graph = fuzzy_controller()
        arch = cool_board()
        hw = ["rule00", "rule01", "rule02", "rule10"]
        mapping = {n.name: ("fpga0" if n.name in hw else "dsp0")
                   for n in graph.internal_nodes()}
        partition = from_mapping(graph, mapping, arch.fpga_names,
                                 arch.processor_names)
        shared = synthesize_resource(graph, partition, "fpga0",
                                     arch.fpga("fpga0"))
        individual = sum(r.area_clbs for r in shared.node_results.values())
        assert shared.datapath_area_clbs < individual

    def test_latencies_for_all_nodes(self):
        graph = fuzzy_controller()
        arch = cool_board()
        hw = ["fz_e", "defuzz"]
        mapping = {n.name: ("fpga0" if n.name in hw else "dsp0")
                   for n in graph.internal_nodes()}
        partition = from_mapping(graph, mapping, arch.fpga_names,
                                 arch.processor_names)
        shared = synthesize_resource(graph, partition, "fpga0",
                                     arch.fpga("fpga0"))
        assert set(shared.latencies) == set(hw)
        assert all(v >= 1 for v in shared.latencies.values())

    def test_empty_resource(self):
        graph = fuzzy_controller()
        arch = cool_board()
        mapping = {n.name: "dsp0" for n in graph.internal_nodes()}
        partition = from_mapping(graph, mapping, arch.fpga_names,
                                 arch.processor_names)
        shared = synthesize_resource(graph, partition, "fpga0",
                                     arch.fpga("fpga0"))
        assert shared.total_area_clbs == 0
        assert shared.latencies == {}


class TestHlsPropertyBased:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=16),
           st.integers(min_value=1, max_value=4))
    def test_schedule_always_valid_and_monotone(self, taps, words, fus):
        fpga = xc4005()
        dfg = expand_node(fir_node(taps=taps, words=words))
        schedule = list_schedule_ops(dfg, fpga.latency_for, {"mac": fus})
        assert schedule.validate({"mac": fus}) == []
        binding = bind(schedule)
        assert binding.fu_counts.get("mac", 0) <= fus
        rtl_area = datapath_area_clbs(
            __import__("repro.hls.rtl", fromlist=["build_rtl"]).build_rtl(
                "t", 16, schedule, binding), fpga)
        assert rtl_area >= 1
