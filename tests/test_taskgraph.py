"""Unit tests for repro.graph.taskgraph."""

import pytest

from repro.graph import (DataEdge, GraphError, TaskGraph, linear_chain,
                         make_node)


def diamond() -> TaskGraph:
    g = TaskGraph("diamond")
    g.add_node(name="in0", kind="input", words=4)
    g.add_node(name="a", kind="copy", words=4)
    g.add_node(name="b", kind="gain", params={"factor": 2}, words=4)
    g.add_node(name="c", kind="add", words=4)
    g.add_node(name="out0", kind="output", words=4)
    g.add_edge("in0", "a")
    g.add_edge("in0", "b")
    g.add_edge("a", "c")
    g.add_edge("b", "c")
    g.add_edge("c", "out0")
    return g


class TestNodeConstruction:
    def test_make_node_params_roundtrip(self):
        node = make_node("n", "gain", {"factor": 3, "shift": 1})
        assert node.params == {"factor": 3, "shift": 1}

    def test_node_is_hashable(self):
        node = make_node("n", "fir", {"taps": (1, 2, 1)})
        assert {node: 1}[node] == 1

    def test_empty_name_rejected(self):
        with pytest.raises(GraphError):
            make_node("", "copy")

    def test_bad_width_rejected(self):
        with pytest.raises(GraphError):
            make_node("n", "copy", width=0)

    def test_bad_words_rejected(self):
        with pytest.raises(GraphError):
            make_node("n", "copy", words=-1)

    def test_io_flags(self):
        assert make_node("i", "input").is_input
        assert make_node("o", "output").is_output
        assert make_node("i", "input").is_io
        assert not make_node("n", "copy").is_io

    def test_bits(self):
        assert make_node("n", "copy", width=16, words=4).bits == 64


class TestGraphConstruction:
    def test_add_duplicate_node_rejected(self):
        g = TaskGraph()
        g.add_node(name="a", kind="copy")
        with pytest.raises(GraphError):
            g.add_node(name="a", kind="copy")

    def test_edge_unknown_endpoint_rejected(self):
        g = TaskGraph()
        g.add_node(name="a", kind="copy")
        with pytest.raises(GraphError):
            g.add_edge("a", "missing")
        with pytest.raises(GraphError):
            g.add_edge("missing", "a")

    def test_self_loop_rejected(self):
        g = TaskGraph()
        g.add_node(name="a", kind="copy")
        with pytest.raises(GraphError):
            g.add_edge("a", "a")

    def test_edge_inherits_producer_shape(self):
        g = TaskGraph()
        g.add_node(name="a", kind="copy", width=24, words=7)
        g.add_node(name="b", kind="copy", width=24, words=7)
        edge = g.add_edge("a", "b")
        assert (edge.width, edge.words) == (24, 7)
        assert edge.bits == 24 * 7

    def test_port_autoassignment(self):
        g = diamond()
        ports = [e.dst_port for e in g.in_edges("c")]
        assert ports == [0, 1]

    def test_duplicate_port_rejected(self):
        g = TaskGraph()
        for n in ("a", "b", "c"):
            g.add_node(name=n, kind="copy")
        g.add_edge("a", "c", dst_port=0)
        with pytest.raises(GraphError):
            g.add_edge("b", "c", dst_port=0)

    def test_edge_name_is_stable(self):
        e = DataEdge("a", "b", 0, 16, 2)
        assert e.name == "a__to__b_p0"


class TestGraphQueries:
    def test_len_and_contains(self):
        g = diamond()
        assert len(g) == 5
        assert "a" in g and "zz" not in g

    def test_predecessors_ordered_by_port(self):
        g = diamond()
        assert g.predecessors("c") == ["a", "b"]

    def test_successors(self):
        g = diamond()
        assert sorted(g.successors("in0")) == ["a", "b"]

    def test_sources_and_sinks(self):
        g = diamond()
        assert g.sources() == ["in0"]
        assert g.sinks() == ["out0"]

    def test_inputs_outputs_internal(self):
        g = diamond()
        assert [n.name for n in g.inputs()] == ["in0"]
        assert [n.name for n in g.outputs()] == ["out0"]
        assert [n.name for n in g.internal_nodes()] == ["a", "b", "c"]

    def test_unknown_node_query_raises(self):
        g = diamond()
        with pytest.raises(GraphError):
            g.node("nope")
        with pytest.raises(GraphError):
            g.in_edges("nope")

    def test_edge_between(self):
        g = diamond()
        assert len(g.edge_between("in0", "a")) == 1
        assert g.edge_between("a", "b") == []


class TestTopology:
    def test_topological_order_respects_edges(self):
        g = diamond()
        order = g.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for e in g.edges:
            assert pos[e.src] < pos[e.dst]

    def test_cycle_detection(self):
        g = TaskGraph()
        for n in ("a", "b"):
            g.add_node(name=n, kind="copy")
        g.add_edge("a", "b")
        # force a cycle through the internals (add_edge would allow it)
        g.add_edge("b", "a")
        assert not g.is_acyclic()
        with pytest.raises(GraphError):
            g.topological_order()

    def test_depth(self):
        g = diamond()
        assert g.depth() == 4  # in0 -> a/b -> c -> out0

    def test_reachable_from(self):
        g = diamond()
        assert g.reachable_from("in0") == {"a", "b", "c", "out0"}
        assert g.reachable_from("c") == {"out0"}

    def test_linear_chain_helper(self):
        g = linear_chain(["copy", "copy", "copy"])
        assert len(g) == 5
        assert g.depth() == 5

    def test_copy_is_deep_on_structure(self):
        g = diamond()
        dup = g.copy()
        dup.add_node(name="extra", kind="copy")
        assert "extra" not in g
        assert len(dup.edges) == len(g.edges)

    def test_stats(self):
        stats = diamond().stats()
        assert stats["nodes"] == 5
        assert stats["edges"] == 5
        assert stats["internal"] == 3
        assert stats["depth"] == 4
