"""Direct unit tests for the co-simulation component models."""

import pytest

from repro.controllers import FixedPriorityArbiter, RoundRobinArbiter
from repro.graph import TaskGraph, make_node
from repro.platform import MemoryDevice
from repro.sim import BusModel, BusRequest, MemoryModel, SimError, UnitSim
from repro.stg.memory import MemoryCell, MemoryMap


def small_map():
    cells = {
        "e1": MemoryCell("e1", 0x100, 4, 0, 10),
        "e2": MemoryCell("e2", 0x104, 4, 5, 20),
        "e3": MemoryCell("e3", 0x100, 4, 12, 30),  # reuses e1's block
    }
    return MemoryMap("sram", 0x100, cells, reuse=True)


class TestMemoryModel:
    def test_write_then_read_roundtrip(self):
        mem = MemoryModel(MemoryDevice("sram", 4096, base_address=0x100),
                          small_map())
        mem.write_cell("e1", [1, 2, 3, 4])
        assert mem.read_cell("e1", 4) == [1, 2, 3, 4]
        assert mem.stats()["writes"] == 4

    def test_oversized_payload_rejected(self):
        mem = MemoryModel(MemoryDevice("sram", 4096, base_address=0x100),
                          small_map())
        with pytest.raises(ValueError):
            mem.write_cell("e1", [0] * 5)

    def test_out_of_device_rejected(self):
        mem = MemoryModel(MemoryDevice("sram", 4, base_address=0x100,
                                       word_bytes=2), small_map())
        with pytest.raises(ValueError):
            mem.write_cell("e2", [1, 2, 3, 4])

    def test_unwritten_reads_zero(self):
        mem = MemoryModel(MemoryDevice("sram", 4096, base_address=0x100),
                          small_map())
        assert mem.read_cell("e2", 4) == [0, 0, 0, 0]


class TestBusModel:
    def test_single_burst_lifecycle(self):
        bus = BusModel(FixedPriorityArbiter(["a"]))
        bus.request(BusRequest("e1", "write", "a", 3, [9]))
        done = [bus.step() for _ in range(5)]
        completed = [d for d in done if d is not None]
        assert len(completed) == 1
        assert completed[0].edge == "e1"
        assert "e1" in bus.written_edges

    def test_read_waits_for_write(self):
        bus = BusModel(FixedPriorityArbiter(["a"]))
        bus.request(BusRequest("e1", "read", "a", 1))
        for _ in range(4):
            assert bus.step() is None  # never granted
        bus.mark_written("e1")
        results = [bus.step() for _ in range(3)]
        assert any(r is not None and r.kind == "read" for r in results)

    def test_write_interlock_blocks_until_read(self):
        bus = BusModel(FixedPriorityArbiter(["a", "b"]),
                       write_interlocks={"e3": {"e1"}})
        bus.request(BusRequest("e3", "write", "b", 1, [5]))
        for _ in range(3):
            assert bus.step() is None  # e3 blocked on e1's read
        bus.mark_written("e1")
        bus.request(BusRequest("e1", "read", "a", 1))
        completed = []
        for _ in range(6):
            done = bus.step()
            if done:
                completed.append((done.edge, done.kind))
        assert ("e1", "read") in completed
        assert ("e3", "write") in completed
        assert completed.index(("e1", "read")) < \
            completed.index(("e3", "write"))

    def test_round_robin_fairness_on_bus(self):
        bus = BusModel(RoundRobinArbiter(["a", "b"]))
        for i in range(4):
            bus.request(BusRequest(f"ea{i}", "write", "a", 1, []))
            bus.request(BusRequest(f"eb{i}", "write", "b", 1, []))
        masters = []
        for _ in range(20):
            done = bus.step()
            if done:
                masters.append(done.master)
        assert masters.count("a") == 4
        assert masters.count("b") == 4
        # strict alternation under round robin
        assert all(x != y for x, y in zip(masters, masters[1:]))

    def test_busy_accounting(self):
        bus = BusModel(FixedPriorityArbiter(["a"]))
        bus.request(BusRequest("e1", "write", "a", 4, []))
        for _ in range(8):
            bus.step()
        assert bus.stats()["busy_ticks"] == 4
        assert bus.stats()["granted_bursts"] == 1


class TestUnitSim:
    def graph(self):
        g = TaskGraph("t")
        g.add_node(make_node("in0", "input", words=2))
        g.add_node(make_node("g", "gain", {"factor": 3}, words=2))
        g.add_node(make_node("out0", "output", words=2))
        g.add_edge("in0", "g")
        g.add_edge("g", "out0")
        return g

    def test_compute_after_latency(self):
        g = self.graph()
        unit = UnitSim("cpu", g, {"g": 3})
        unit.deliver("in0__to__g_p0", [1, 2])
        unit.start("g", {"in0__to__g_p0"})
        assert unit.step() is None
        assert unit.step() is None
        assert unit.step() == "g"
        assert unit.value_of("g") == [3, 6]

    def test_waits_for_delivery(self):
        g = self.graph()
        unit = UnitSim("cpu", g, {"g": 1})
        unit.start("g", {"in0__to__g_p0"})
        for _ in range(5):
            assert unit.step() is None  # stalled: operand missing
        unit.deliver("in0__to__g_p0", [4, 4])
        assert unit.step() == "g"

    def test_double_start_rejected(self):
        g = self.graph()
        unit = UnitSim("cpu", g, {"g": 5})
        unit.start("g", set())
        with pytest.raises(SimError):
            unit.start("g", set())

    def test_input_unit_uses_stimulus(self):
        g = self.graph()
        unit = UnitSim("io", g, {"in0": 1}, stimuli={"in0": [7, 8]})
        unit.start("in0", set())
        assert unit.step() == "in0"
        assert unit.value_of("in0") == [7, 8]

    def test_missing_stimulus_raises(self):
        g = self.graph()
        unit = UnitSim("io", g, {"in0": 1})
        unit.start("in0", set())
        with pytest.raises(SimError):
            unit.step()

    def test_output_unit_records(self):
        g = self.graph()
        unit = UnitSim("io", g, {"out0": 1})
        unit.deliver("g__to__out0_p0", [9, 9])
        unit.start("out0", {"g__to__out0_p0"})
        assert unit.step() == "out0"
        assert unit.outputs["out0"] == [9, 9]

    def test_reset_clears_state(self):
        g = self.graph()
        unit = UnitSim("cpu", g, {"g": 1})
        unit.deliver("in0__to__g_p0", [1, 1])
        unit.start("g", set())
        unit.step()
        unit.reset()
        assert unit.active is None
        assert unit.local_values == {}
        with pytest.raises(SimError):
            unit.value_of("g")
