"""Tests for the stage-graph pipeline engine and the incremental flow."""

from types import SimpleNamespace

import pytest

from repro.apps import four_band_equalizer
from repro.flow import (CoolFlow, FlowContext, PipelineError,
                        PipelineExecutor, Stage, StageCache, fingerprint_of,
                        select_eviction_victim, stage_timer)
from repro.graph import TaskGraph, execute
from repro.partition import (GreedyPartitioner, MilpPartitioner, Partitioner,
                             PartitioningProblem, evaluate_mapping)
from repro.platform import (Bus, Fpga, MemoryDevice, TargetArchitecture,
                            cool_board, dsp56001, minimal_board)


class TestStageTimer:
    def test_accumulates_across_entries(self):
        sink = {}
        with stage_timer("a", sink):
            pass
        first = sink["a"]
        with stage_timer("a", sink):
            pass
        assert sink["a"] >= first

    def test_records_on_exception(self):
        sink = {}
        with pytest.raises(ValueError):
            with stage_timer("boom", sink):
                raise ValueError("x")
        assert sink["boom"] >= 0


class TestFingerprints:
    def test_taskgraph_content_hash_is_stable(self):
        a = four_band_equalizer(words=8)
        b = four_band_equalizer(words=8)
        assert a is not b
        assert a.fingerprint() == b.fingerprint()

    def test_taskgraph_hash_changes_on_mutation(self):
        graph = four_band_equalizer(words=8)
        before = graph.fingerprint()
        graph.add_node(name="extra", kind="gain", params={"shift": 1})
        assert graph.fingerprint() != before

    def test_taskgraph_hash_differs_for_different_payload(self):
        assert four_band_equalizer(words=8).fingerprint() != \
            four_band_equalizer(words=4).fingerprint()

    def test_architecture_fingerprint(self):
        assert minimal_board().fingerprint() == minimal_board().fingerprint()
        assert minimal_board().fingerprint() != cool_board().fingerprint()

    def test_partition_and_schedule_fingerprints(self):
        graph = four_band_equalizer(words=8)
        problem = PartitioningProblem(graph, minimal_board())
        mapping = {n.name: "dsp0" for n in graph.internal_nodes()}
        p1, s1, _ = evaluate_mapping(problem, mapping)
        p2, s2, _ = evaluate_mapping(problem, dict(mapping))
        assert p1.fingerprint() == p2.fingerprint()
        assert s1.fingerprint() == s2.fingerprint()
        moved = dict(mapping)
        moved[graph.internal_nodes()[0].name] = "fpga0"
        p3, s3, _ = evaluate_mapping(problem, moved)
        assert p3.fingerprint() != p1.fingerprint()
        assert s3.fingerprint() != s1.fingerprint()

    def test_partitioner_fingerprint_covers_config(self):
        assert GreedyPartitioner().fingerprint() == \
            GreedyPartitioner().fingerprint()
        assert MilpPartitioner(backend="scipy").fingerprint() != \
            MilpPartitioner(backend="bnb").fingerprint()

    def test_plain_value_fingerprints(self):
        assert fingerprint_of(None) == fingerprint_of(None)
        assert fingerprint_of((1, "a")) == fingerprint_of((1, "a"))
        assert fingerprint_of({"k": [1, 2]}) == fingerprint_of({"k": [1, 2]})
        assert fingerprint_of(1) != fingerprint_of(2)


def _counting_stages(counter):
    def double(ctx):
        counter["double"] += 1
        return {"doubled": ctx.get("x") * 2}

    def shout(ctx):
        counter["shout"] += 1
        return {"shouted": f"{ctx.get('doubled')}!{ctx.get('suffix')}"}

    return [
        Stage("double", ("x",), ("doubled",), double),
        Stage("shout", ("doubled", "suffix"), ("shouted",), shout),
    ]


class TestPipelineExecutor:
    def test_runs_only_what_is_requested(self):
        counter = {"double": 0, "shout": 0}
        executor = PipelineExecutor(_counting_stages(counter))
        ctx = FlowContext(x=21, suffix="?")
        executor.request(ctx, ["doubled"])
        assert ctx.get("doubled") == 42
        assert counter == {"double": 1, "shout": 0}

    def test_skips_fresh_stages(self):
        counter = {"double": 0, "shout": 0}
        executor = PipelineExecutor(_counting_stages(counter))
        ctx = FlowContext(x=21, suffix="?")
        executor.request(ctx, ["shouted"])
        executor.request(ctx, ["shouted"])
        assert counter == {"double": 1, "shout": 1}

    def test_reruns_only_stages_whose_inputs_changed(self):
        counter = {"double": 0, "shout": 0}
        executor = PipelineExecutor(_counting_stages(counter))
        ctx = FlowContext(x=21, suffix="?")
        executor.request(ctx, ["shouted"])
        ctx.put("suffix", "!!")  # only the second stage depends on this
        executor.request(ctx, ["shouted"])
        assert counter == {"double": 1, "shout": 2}
        assert ctx.get("shouted") == "42!!!"

    def test_missing_input_raises(self):
        executor = PipelineExecutor(_counting_stages({"double": 0,
                                                      "shout": 0}))
        with pytest.raises(PipelineError, match="missing input"):
            executor.request(FlowContext(), ["doubled"])

    def test_unknown_requested_artifact_raises(self):
        executor = PipelineExecutor(_counting_stages({"double": 0,
                                                      "shout": 0}))
        with pytest.raises(PipelineError, match="no stage produces"):
            executor.request(FlowContext(x=1), ["doubeld"])  # typo

    def test_requesting_seeded_artifact_is_allowed(self):
        executor = PipelineExecutor(_counting_stages({"double": 0,
                                                      "shout": 0}))
        executor.request(FlowContext(x=1, suffix="?"), ["x"])  # no-op

    def test_commit_outputs_replaces_cache_entry(self):
        cache = StageCache()
        counter = {"double": 0, "shout": 0}
        executor = PipelineExecutor(_counting_stages(counter), cache=cache)
        ctx = FlowContext(x=21, suffix="?")
        executor.request(ctx, ["doubled"])
        ctx.put("doubled", 1000)  # driver refines the stage's output
        executor.commit_outputs(ctx, "double")
        fresh = PipelineExecutor(_counting_stages(counter), cache=cache)
        ctx2 = FlowContext(x=21, suffix="?")
        fresh.request(ctx2, ["doubled"])
        assert ctx2.get("doubled") == 1000
        assert counter["double"] == 1  # refined value served from cache

    def test_commit_outputs_unknown_stage_raises(self):
        executor = PipelineExecutor(_counting_stages({"double": 0,
                                                      "shout": 0}))
        with pytest.raises(PipelineError, match="unknown stage"):
            executor.commit_outputs(FlowContext(x=1), "nope")

    def test_duplicate_producer_rejected(self):
        stage = Stage("a", (), ("k",), lambda ctx: {"k": 1})
        clone = Stage("b", (), ("k",), lambda ctx: {"k": 2})
        with pytest.raises(PipelineError, match="produced by both"):
            PipelineExecutor([stage, clone])

    def test_stage_must_produce_declared_outputs(self):
        stage = Stage("bad", ("x",), ("y",), lambda ctx: {})
        executor = PipelineExecutor([stage])
        with pytest.raises(PipelineError, match="did not produce"):
            executor.request(FlowContext(x=1), ["y"])

    def test_cross_executor_cache(self):
        cache = StageCache()
        counter = {"double": 0, "shout": 0}
        first = PipelineExecutor(_counting_stages(counter), cache=cache)
        first.request(FlowContext(x=21, suffix="?"), ["shouted"])
        second = PipelineExecutor(_counting_stages(counter), cache=cache)
        ctx = FlowContext(x=21, suffix="?")
        second.request(ctx, ["shouted"])
        assert counter == {"double": 1, "shout": 1}
        assert second.stage_runs == {"double": 0, "shout": 0}
        assert second.cache_hits == {"double": 1, "shout": 1}
        assert ctx.get("shouted") == "42!?"

    def test_cache_lru_eviction(self):
        cache = StageCache(max_entries=1)
        cache.put("s", ("a",), {"k": (1, "fp")})
        cache.put("s", ("b",), {"k": (2, "fp")})
        assert len(cache) == 1
        assert cache.get("s", ("a",)) is None
        assert cache.get("s", ("b",)) is not None

    def test_snapshot_delta_reports_window_honestly(self):
        # a fully-warm re-sweep must report hit_rate 1.0 for its own
        # window, not ~0.5 diluted by the cold pass that came before
        cache = StageCache()
        cache.put("s", ("a",), {"k": (1, "fp")})
        cache.get("s", ("miss",))
        cache.get("s", ("a",))
        assert cache.stats()["hit_rate"] == 0.5
        window = cache.snapshot()
        cache.get("s", ("a",))
        cache.get("s", ("a",))
        warm = cache.stats(since=window)
        assert warm["hits"] == 2
        assert warm["misses"] == 0
        assert warm["hit_rate"] == 1.0
        # lifetime view unchanged by windowing
        assert cache.stats()["hits"] == 3

    def test_merge_stats_across_caches(self):
        views = [{"entries": 10, "max_entries": 64, "hits": 8, "misses": 2},
                 {"entries": 5, "max_entries": 64, "hits": 0, "misses": 5}]
        merged = StageCache.merge_stats(views)
        assert merged["entries"] == 15
        assert merged["hits"] == 8 and merged["misses"] == 7
        assert merged["hit_rate"] == round(8 / 15, 4)
        assert merged["caches"] == 2

    def test_merge_stats_of_nothing(self):
        merged = StageCache.merge_stats([])
        assert merged["caches"] == 0
        assert merged["hit_rate"] == 0.0

    def test_merge_stats_of_mixed_tiered_and_flat_views(self):
        # shard reduce may see tiered views (store-backed workers) and
        # flat views (memory-only workers) in the same sweep: numeric
        # counters sum, nested l1/l2 tiers merge recursively, and the
        # top-level hit rate is recomputed over the merged counters
        tiered = {"hits": 4, "misses": 1, "promotions": 2,
                  "l1": {"entries": 3, "max_entries": 64,
                         "hits": 2, "misses": 3},
                  "l2": {"hits": 2, "misses": 1, "entries": 9,
                         "bytes": 4096, "evictions": 0,
                         "quarantined": 0, "hit_rate": 0.6667}}
        flat = {"entries": 5, "max_entries": 64, "hits": 1, "misses": 4,
                "hit_rate": 0.2}
        merged = StageCache.merge_stats([tiered, flat])
        assert merged["caches"] == 2
        assert merged["hits"] == 5 and merged["misses"] == 5
        assert merged["hit_rate"] == 0.5
        assert merged["promotions"] == 2
        # the flat view's entries stay top-level; the tiered view's
        # occupancy lives in its nested tiers
        assert merged["entries"] == 5
        assert merged["l1"] == {"entries": 3, "max_entries": 64,
                                "hits": 2, "misses": 3,
                                "hit_rate": 0.4, "caches": 1}
        assert merged["l2"]["hits"] == 2
        assert merged["l2"]["bytes"] == 4096
        assert merged["l2"]["hit_rate"] == round(2 / 3, 4)
        assert merged["l2"]["caches"] == 1

    def test_merge_stats_mixed_with_empty_view(self):
        views = [{"entries": 2, "max_entries": 64, "hits": 3, "misses": 1},
                 {}]
        merged = StageCache.merge_stats(views)
        assert merged["caches"] == 2
        assert merged["hits"] == 3 and merged["misses"] == 1
        assert merged["hit_rate"] == 0.75

    def test_merge_stats_of_two_tiered_views(self):
        view = {"hits": 2, "misses": 2, "promotions": 1,
                "l1": {"entries": 1, "max_entries": 8,
                       "hits": 1, "misses": 3},
                "l2": {"hits": 1, "misses": 2, "entries": 4}}
        merged = StageCache.merge_stats([view, view])
        assert merged["caches"] == 2
        assert merged["hits"] == 4 and merged["misses"] == 4
        assert merged["l1"]["caches"] == 2
        assert merged["l1"]["hits"] == 2 and merged["l1"]["misses"] == 6
        assert merged["l2"]["entries"] == 8  # shared store counted per view


class _AllHardware(Partitioner):
    """Force every internal node onto the first FPGA (ignores area)."""

    name = "all_hw"

    def solve(self, problem):
        fpga = problem.arch.fpga_names[0]
        return {n.name: fpga for n in problem.graph.internal_nodes()}


def _tiny_fpga_board(clb_capacity: int) -> TargetArchitecture:
    """A board whose FPGA is deliberately undersized for the equalizer."""
    return TargetArchitecture(
        name=f"tiny_{clb_capacity}",
        processors=(dsp56001("dsp0"),),
        fpgas=(Fpga(name="fpga0", model="XC-tiny",
                    clb_capacity=clb_capacity, clock_hz=10e6),),
        memory=MemoryDevice("sram", 64 * 1024, base_address=0x1000,
                            word_bytes=2, read_cycles=1, write_cycles=1),
        bus=Bus("sysbus", width_bits=16, clock_hz=10e6, cycles_per_word=1),
    )


class TestAreaRepair:
    def test_undersized_fpga_converges_by_eviction(self):
        graph = four_band_equalizer(words=8)
        flow = CoolFlow(_tiny_fpga_board(2), partitioner=_AllHardware())
        result = flow.run(graph)
        repairs = result.partition_result.stats["area_repairs"]
        assert repairs >= 1
        for resource, clbs in result.clbs_per_fpga.items():
            assert clbs <= result.arch.fpga(resource).clb_capacity
        # evicted nodes actually run in software
        assert result.partition_result.partition.sw_nodes()
        assert "dsp0.c" in result.c_files

    def test_repaired_flow_still_simulates_correctly(self):
        graph = four_band_equalizer(words=8)
        stimuli = {"x": [7, -3 & 0xFFFF, 12, 0, 5, 0, 0, 0]}
        flow = CoolFlow(_tiny_fpga_board(2), partitioner=_AllHardware())
        result = flow.run(graph, stimuli=stimuli)
        assert result.partition_result.stats["area_repairs"] >= 1
        assert result.sim_result.outputs["y"] == execute(graph, stimuli)["y"]

    def test_non_convergence_raises(self, monkeypatch):
        graph = four_band_equalizer(words=8)
        arch = _tiny_fpga_board(2)

        def always_overflowing(graph_, partition, resource, fpga):
            node_results = {name: SimpleNamespace(area_clbs=100)
                            for name in partition.nodes_on(resource)}
            return SimpleNamespace(node_results=node_results,
                                   total_area_clbs=fpga.clb_capacity + 1,
                                   latencies={})

        monkeypatch.setattr("repro.flow.cool.synthesize_resource",
                            always_overflowing)
        flow = CoolFlow(arch, partitioner=_AllHardware())
        with pytest.raises(RuntimeError, match="area repair"):
            flow.run(graph)

    def test_victim_selection_respects_deadline(self):
        """The largest node is skipped when evicting it breaks the deadline."""
        graph = TaskGraph("victims")
        graph.add_node(name="in0", kind="input", width=16, words=8)
        graph.add_node(name="heavy", kind="fir",
                       params={"taps": tuple(range(1, 13)), "shift": 2},
                       width=16, words=8)
        graph.add_node(name="light", kind="gain",
                       params={"factor": 2, "shift": 1},
                       width=16, words=8)
        graph.add_node(name="out0", kind="output", width=16, words=8)
        graph.add_edge("in0", "heavy")
        graph.add_edge("heavy", "light")
        graph.add_edge("light", "out0")

        arch = _tiny_fpga_board(400)
        problem_free = PartitioningProblem(graph, arch)
        both_hw = {"heavy": "fpga0", "light": "fpga0"}
        makespans = {}
        for victim in ("heavy", "light"):
            mapping = dict(both_hw)
            mapping[victim] = "dsp0"
            _, schedule, _ = evaluate_mapping(problem_free, mapping)
            makespans[victim] = schedule.makespan
        assert makespans["heavy"] > makespans["light"], \
            "scenario needs the heavy node to be slower in software"

        deadline = makespans["light"]
        problem = PartitioningProblem(graph, arch, deadline=deadline)
        partition, _, _ = evaluate_mapping(problem, both_hw)
        # "heavy" saves the most area but breaks the deadline -> "light"
        victim, moved, schedule, report = select_eviction_victim(
            problem, partition, "fpga0",
            {"heavy": 100, "light": 50}, "dsp0")
        assert victim == "light"
        assert report.deadline_ok
        assert moved.resource_of("light") == "dsp0"
        assert moved.resource_of("heavy") == "fpga0"

    def test_victim_selection_falls_back_to_largest(self):
        graph = four_band_equalizer(words=8)
        arch = _tiny_fpga_board(2)
        problem = PartitioningProblem(graph, arch, deadline=1)  # hopeless
        mapping = {n.name: "fpga0" for n in graph.internal_nodes()}
        partition, _, _ = evaluate_mapping(problem, mapping)
        areas = {name: 10 + i
                 for i, name in enumerate(partition.nodes_on("fpga0"))}
        biggest = max(areas, key=areas.get)
        victim, *_ = select_eviction_victim(problem, partition, "fpga0",
                                            areas, "dsp0")
        assert victim == biggest

    def test_victim_selection_without_candidates_raises(self):
        graph = four_band_equalizer(words=8)
        problem = PartitioningProblem(graph, _tiny_fpga_board(2))
        mapping = {n.name: "dsp0" for n in graph.internal_nodes()}
        partition, _, _ = evaluate_mapping(problem, mapping)
        with pytest.raises(RuntimeError, match="no evictable nodes"):
            select_eviction_victim(problem, partition, "fpga0", {}, "dsp0")


class TestIncrementalReexecution:
    def test_stg_and_comm_not_rerun_during_area_repair(self):
        graph = four_band_equalizer(words=8)
        flow = CoolFlow(_tiny_fpga_board(2), partitioner=_AllHardware())
        result = flow.run(graph)
        repairs = result.partition_result.stats["area_repairs"]
        assert repairs >= 1
        # hls re-ran once per repair, co-synthesis ran exactly once
        assert result.stage_runs["hls"] == repairs + 1
        assert result.stage_runs["stg"] == 1
        assert result.stage_runs["communication"] == 1
        assert result.stage_runs["codegen"] == 1

    def test_second_run_after_area_repair_skips_eviction_search(self):
        graph = four_band_equalizer(words=8)
        flow = CoolFlow(_tiny_fpga_board(2), partitioner=_AllHardware())
        first = flow.run(graph)
        repairs = first.partition_result.stats["area_repairs"]
        assert repairs >= 1
        second = flow.run(graph)
        # the converged mapping was committed to the cache: no stage
        # re-runs, and the repaired stats are preserved
        assert sum(second.stage_runs.values()) == 0
        assert second.partition_result.stats["area_repairs"] == repairs
        assert second.clbs_per_fpga == first.clbs_per_fpga

    def test_result_dicts_are_isolated_from_cache(self):
        graph = four_band_equalizer(words=8)
        flow = CoolFlow(minimal_board(), partitioner=GreedyPartitioner())
        first = flow.run(graph)
        first.vhdl_files["injected.vhd"] = "-- mutated by caller"
        first.c_files["rogue.c"] = "int main(){}"
        second = flow.run(graph)
        assert "injected.vhd" not in second.vhdl_files
        assert "rogue.c" not in second.c_files

    def test_partition_stats_are_isolated_from_cache(self):
        graph = four_band_equalizer(words=8)
        flow = CoolFlow(minimal_board(), partitioner=GreedyPartitioner())
        first = flow.run(graph)
        first.partition_result.stats["note"] = "mine"
        second = flow.run(graph)
        assert "note" not in second.partition_result.stats

    def test_second_run_hits_stage_cache(self):
        graph = four_band_equalizer(words=8)
        stimuli = {"x": [10, 20, 30, 40, 0, 0, 0, 0]}
        flow = CoolFlow(minimal_board(), partitioner=GreedyPartitioner())
        first = flow.run(graph, stimuli=stimuli)
        assert sum(first.stage_runs.values()) > 0
        second = flow.run(graph, stimuli=stimuli)
        assert sum(second.stage_runs.values()) == 0
        # everything is still reported, timed and identical
        for stage in ("validate", "partitioning", "stg", "communication",
                      "hls", "controllers", "codegen", "cosim"):
            assert stage in second.stage_seconds
        assert second.vhdl_files == first.vhdl_files
        assert second.makespan == first.makespan
        assert second.sim_result.outputs == first.sim_result.outputs

    def test_changed_graph_misses_stage_cache(self):
        flow = CoolFlow(minimal_board(), partitioner=GreedyPartitioner())
        flow.run(four_band_equalizer(words=8))
        other = flow.run(four_band_equalizer(words=4))
        assert sum(other.stage_runs.values()) > 0

    def test_changed_deadline_reruns_partitioning_only_downstream(self):
        graph = four_band_equalizer(words=8)
        flow = CoolFlow(minimal_board(), partitioner=GreedyPartitioner())
        free = flow.run(graph)
        relaxed = flow.run(graph, deadline=free.makespan * 4)
        # partitioning re-ran (new deadline artifact) ...
        assert relaxed.stage_runs["partitioning"] == 1
        # ... but validation was cache-served
        assert relaxed.stage_runs["validate"] == 0

    def test_shared_cache_across_flow_instances(self):
        graph = four_band_equalizer(words=8)
        cache = StageCache()
        first = CoolFlow(minimal_board(), partitioner=GreedyPartitioner(),
                         stage_cache=cache)
        first.run(graph)
        second = CoolFlow(minimal_board(), partitioner=GreedyPartitioner(),
                          stage_cache=cache)
        result = second.run(graph)
        assert sum(result.stage_runs.values()) == 0
