"""Guard-simplification soundness: original vs simplified guards.

The symbolic pipeline may only change *representation*, never
observable behaviour:

* controller-level: :func:`repro.controllers.simplify_controller_guards`
  reduces FSM condition literals against reachability care sets -- the
  simplified FSMs must step identically on **every** harvested care
  valuation, and the rebuilt controller must still prove equivalent to
  its STG (the paper's headline claim, now on simplified guards);
* kernel-level: :func:`repro.automata.simplify_automaton_guards` and
  ``minimize_automaton(simplify_guards=True)`` must preserve the
  sequential input->output map on exhaustive/random input vectors and
  never end up with more states than the syntactic minimizer.

The population is a 20-design ``workload_suite`` -- the same randomized
harness the kernel-equivalence tests use -- plus crafted corner cases.
"""

import itertools
import random

import pytest

from repro.automata import (AutomatonBuilder, SequentialRunner,
                            minimize_automaton, refine_partition,
                            simplify_automaton_guards)
from repro.controllers import (harvest_care_sets,
                               simplify_controller_guards,
                               synthesize_system_controller,
                               verify_composition)
from repro.partition import GreedyPartitioner
from repro.partition.base import PartitioningProblem
from repro.platform import minimal_board
from repro.stg import build_stg, minimize_stg
from repro.workloads import workload_suite

SUITE = workload_suite(20, seed=5)


def suite_design(spec):
    graph = spec.build()
    result = GreedyPartitioner().partition(
        PartitioningProblem(graph, minimal_board()))
    stg, _ = minimize_stg(build_stg(result.schedule))
    return graph, stg


@pytest.mark.parametrize("spec", SUITE,
                         ids=lambda s: f"{s.family}-{s.seed}")
def test_simplified_controller_steps_identically_on_care_vectors(spec):
    """Property: on every reachable valuation, original == simplified."""
    _graph, stg = suite_design(spec)
    controller = synthesize_system_controller(stg)
    care = harvest_care_sets(controller)
    simplified, stats = simplify_controller_guards(controller,
                                                   care_sets=care)
    assert stats["simplified"]
    assert stats["literals_after"] <= stats["literals_before"]
    for original, reduced in zip(controller.fsms, simplified.fsms):
        observed = care.get(original.name, {})
        for state in original.states:
            for valuation in observed.get(state, ()):
                assert original.step(state, set(valuation)) == \
                    reduced.step(state, set(valuation)), \
                    (original.name, state, sorted(valuation))


@pytest.mark.parametrize("spec", SUITE[:6],
                         ids=lambda s: f"{s.family}-{s.seed}")
def test_simplified_controller_still_verifies_against_stg(spec):
    graph, stg = suite_design(spec)
    controller = synthesize_system_controller(stg)
    simplified, stats = simplify_controller_guards(controller)
    assert stats["simplified"]
    check = verify_composition(stg, simplified, graph=graph)
    assert check.equivalent, check.mismatches
    assert check.tier == "symbolic"
    # the suite designs are small enough for the explicit oracle
    assert check.oracle == "agrees"


def test_suite_reduces_literals_somewhere():
    """The reachability don't-cares must actually buy something."""
    total_before = total_after = 0
    for spec in SUITE[:8]:
        _graph, stg = suite_design(spec)
        controller = synthesize_system_controller(stg)
        _simplified, stats = simplify_controller_guards(controller)
        total_before += stats["literals_before"]
        total_after += stats["literals_after"]
    assert total_after < total_before


# ----------------------------------------------------------------------
# kernel-level simplification
# ----------------------------------------------------------------------
def random_ordered_automaton(rng, n_states=4, n_signals=4):
    builder = AutomatonBuilder(f"rand{rng.randint(0, 1 << 30)}")
    states = [f"s{i}" for i in range(n_states)]
    signals = [f"c{i}" for i in range(n_signals)]
    actions = ["x", "y"]
    for state in states:
        builder.add_state(state,
                          outputs=tuple(rng.sample(actions,
                                                   rng.randint(0, 1))))
    for _ in range(rng.randint(n_states, 3 * n_states)):
        src, dst = rng.choice(states), rng.choice(states)
        if rng.random() < 0.3:
            # a guard cover with negated literals / OR-terms
            cubes = []
            for _ in range(rng.randint(1, 2)):
                picks = rng.sample(signals, rng.randint(1, 2))
                cubes.append(tuple((s, rng.random() < 0.7) for s in picks))
            builder.add_transition(src, dst, guard_cover=cubes,
                                   actions=tuple(rng.sample(
                                       actions, rng.randint(0, 2))))
        else:
            builder.add_transition(
                src, dst,
                conditions=tuple(rng.sample(signals, rng.randint(0, 2))),
                actions=tuple(rng.sample(actions, rng.randint(0, 2))))
    return builder.build(initial="s0"), signals


def assert_sequentially_equal(left, right, signals):
    """Exhaustive input vectors, every state, both automata."""
    runner_l, runner_r = SequentialRunner(left), SequentialRunner(right)
    assert left.state_names == right.state_names
    for state in range(len(left)):
        for k in range(len(signals) + 1):
            for combo in itertools.combinations(signals, k):
                inputs_l = left.symbols.ids_of(set(combo))
                inputs_r = right.symbols.ids_of(set(combo))
                next_l, out_l = runner_l.step(state, inputs_l)
                next_r, out_r = runner_r.step(state, inputs_r)
                assert left.name_of(next_l) == right.name_of(next_r), \
                    (left.name_of(state), combo)
                assert left.symbols.names_of(out_l) == \
                    right.symbols.names_of(out_r)


def test_simplify_automaton_guards_preserves_step_semantics():
    rng = random.Random(17)
    for _ in range(60):
        automaton, signals = random_ordered_automaton(rng)
        simplified = simplify_automaton_guards(automaton, ordered=True)
        assert_sequentially_equal(automaton, simplified, signals)


def test_simplify_never_adds_literals():
    from repro.automata.simplify import SimplifyReport
    rng = random.Random(29)
    for _ in range(40):
        automaton, _signals = random_ordered_automaton(rng)
        report = SimplifyReport()
        simplify_automaton_guards(automaton, ordered=True, report=report)
        assert report["literals_after"] <= report["literals_before"]


def test_minimize_with_guard_canonical_never_coarser_than_plain():
    rng = random.Random(41)
    for _ in range(40):
        automaton, _ = random_ordered_automaton(rng)
        plain = refine_partition(automaton, ordered=True)
        semantic = refine_partition(automaton, ordered=True,
                                    guard_canonical=True)
        assert semantic.n_blocks <= plain.n_blocks


def test_minimize_simplify_guards_preserves_traces():
    rng = random.Random(53)
    for _ in range(25):
        automaton, signals = random_ordered_automaton(rng)
        merged, _refinement = minimize_automaton(automaton, ordered=True,
                                                 simplify_guards=True)
        runner_a = SequentialRunner(automaton)
        runner_m = SequentialRunner(merged)
        for _ in range(20):
            trace = [set(rng.sample(signals, rng.randint(0, 3)))
                     for _ in range(12)]
            state_a, state_m = automaton.initial, merged.initial
            for inputs in trace:
                state_a, out_a = runner_a.step(
                    state_a, automaton.symbols.ids_of(inputs))
                state_m, out_m = runner_m.step(
                    state_m, merged.symbols.ids_of(inputs))
                assert automaton.symbols.names_of(out_a) == \
                    merged.symbols.names_of(out_m)


def test_guard_canonical_merges_semantically_equal_cascades():
    """Disjoint cascades in swapped priority order are one behaviour."""
    builder = AutomatonBuilder("swap")
    for state in ("p", "q", "sink"):
        builder.add_state(state)
    builder.add_transition("sink", "sink")
    # p: a&!b -> sink(x);  !a&b -> sink(y)
    builder.add_transition("p", "sink",
                           guard_cover=[(("a", True), ("b", False))],
                           actions=("x",))
    builder.add_transition("p", "sink",
                           guard_cover=[(("a", False), ("b", True))],
                           actions=("y",))
    # q: same two branches, opposite priority order (disjoint guards,
    # so the outcome map is identical)
    builder.add_transition("q", "sink",
                           guard_cover=[(("a", False), ("b", True))],
                           actions=("y",))
    builder.add_transition("q", "sink",
                           guard_cover=[(("a", True), ("b", False))],
                           actions=("x",))
    automaton = builder.build(initial="p")
    plain = refine_partition(automaton, ordered=True)
    semantic = refine_partition(automaton, ordered=True,
                                guard_canonical=True)
    assert plain.n_blocks == 3          # syntactic order keeps p != q
    assert semantic.n_blocks == 2       # semantics merges them
    merged, _ = minimize_automaton(automaton, ordered=True,
                                   simplify_guards=True)
    assert len(merged) == 2


def test_care_sets_drop_redundant_join_literal():
    builder = AutomatonBuilder("join")
    builder.add_state("wait")
    builder.add_state("go")
    builder.add_transition("wait", "go", conditions=("done_a", "done_b"),
                           actions=("start",))
    builder.add_transition("go", "go")
    automaton = builder.build(initial="wait")
    # reachability: done_a is always latched while waiting
    care = {"wait": [{"done_a"}, {"done_a", "done_b"}]}
    simplified = simplify_automaton_guards(automaton, ordered=True,
                                           care_sets=care)
    (first,) = simplified.out(0)
    assert simplified.symbols.names_of(first.conditions) == ("done_b",)
