"""Tests for system/datapath/IO controllers and bus arbiters."""

import pytest

from repro.apps import four_band_equalizer, fuzzy_controller
from repro.controllers import (ControllerHarness, FixedPriorityArbiter,
                               RoundRobinArbiter,
                               synthesize_datapath_controller,
                               synthesize_io_controller,
                               synthesize_system_controller)
from repro.estimate import CostModel
from repro.graph import from_mapping
from repro.platform import cool_board, minimal_board
from repro.schedule import list_schedule
from repro.stg import (StateKind, Stg, StgError, StgExecutor, StgState,
                       StgTransition, build_stg, global_state, minimize_stg)


def make_schedule(graph, arch, hw_nodes=()):
    mapping = {}
    for node in graph.internal_nodes():
        mapping[node.name] = arch.fpga_names[0] if node.name in hw_nodes \
            else arch.processor_names[0]
    partition = from_mapping(graph, mapping, arch.fpga_names,
                             arch.processor_names)
    return partition, list_schedule(partition, CostModel(graph, arch))


@pytest.fixture(scope="module")
def equalizer_controller():
    graph = four_band_equalizer(words=8)
    partition, schedule = make_schedule(graph, minimal_board(),
                                        {"band0", "gain0"})
    stg = build_stg(schedule)
    mini, _ = minimize_stg(stg)
    controller = synthesize_system_controller(mini)
    return graph, partition, schedule, stg, mini, controller


class TestSystemController:
    def test_one_sequencer_per_used_resource(self, equalizer_controller):
        _, partition, *_, controller = equalizer_controller
        assert set(controller.sequencers) == set(partition.resources_used)

    def test_fewer_states_than_full_stg(self, equalizer_controller):
        *_, stg, _, controller = equalizer_controller
        assert controller.total_states < len(stg) + len(controller.fsms)

    def test_outputs_cover_all_commands(self, equalizer_controller):
        graph, partition, *_, controller = equalizer_controller
        outputs = set(controller.outputs)
        for node in graph.nodes:
            assert f"start_{node.name}" in outputs
        for edge in partition.cut_edges():
            assert f"write_{edge.name}" in outputs
            assert f"read_{edge.name}" in outputs

    def test_inputs_are_done_signals(self, equalizer_controller):
        graph, *_, controller = equalizer_controller
        inputs = set(controller.inputs)
        done = {f"done_{n.name}" for n in graph.nodes}
        assert done <= inputs | {"restart"}

    def test_harness_completes_with_ideal_environment(
            self, equalizer_controller):
        *_, controller = equalizer_controller
        harness = ControllerHarness(controller)
        actions = harness.run(
            lambda newly: {f"done_{n}" for n in newly})
        assert harness.system_done
        assert "system_done" in actions

    def test_every_node_started_once(self, equalizer_controller):
        graph, *_, controller = equalizer_controller
        harness = ControllerHarness(controller)
        actions = harness.run(lambda newly: {f"done_{n}" for n in newly})
        starts = [a for a in actions if a.startswith("start_")]
        assert sorted(starts) == sorted(f"start_{n.name}"
                                        for n in graph.nodes)

    def test_harness_stalls_without_done(self, equalizer_controller):
        *_, controller = equalizer_controller
        harness = ControllerHarness(controller)
        for _ in range(20):
            harness.cycle()
        assert not harness.system_done

    def test_matches_stg_executor_behaviour(self, equalizer_controller):
        """The synthesized controller must reproduce the STG semantics."""
        graph, partition, _, stg, *_ , controller = equalizer_controller
        # run STG executor with the ideal environment
        ex = StgExecutor(stg)
        pending: set[str] = set()
        for _ in range(500):
            acts = ex.step(pending)
            pending = {"done_" + a[len("start_"):]
                       for a in acts if a.startswith("start_")}
            if ex.done:
                break
        stg_actions = [a for fired in ex.action_trace() for a in fired]

        harness = ControllerHarness(controller)
        ctl_actions = harness.run(lambda newly: {f"done_{n}"
                                                 for n in newly})

        def per_resource_starts(actions):
            projected: dict[str, list[str]] = {}
            for a in actions:
                if a.startswith("start_"):
                    node = a[len("start_"):]
                    projected.setdefault(
                        partition.resource_of(node), []).append(node)
            return projected

        assert per_resource_starts(stg_actions) == \
            per_resource_starts(ctl_actions)
        # identical command sets overall (controller adds system_done)
        assert set(stg_actions) <= set(ctl_actions)

    def test_restart_runs_again(self, equalizer_controller):
        *_, controller = equalizer_controller
        harness = ControllerHarness(controller)
        harness.run(lambda newly: {f"done_{n}" for n in newly})
        assert harness.system_done
        harness.cycle(external={"restart"})
        assert not harness.system_done
        actions = harness.run(lambda newly: {f"done_{n}" for n in newly})
        assert harness.system_done
        assert any(a.startswith("start_") for a in actions)

    def test_works_on_unminimized_stg(self, equalizer_controller):
        *_, stg, _, _ = equalizer_controller
        controller = synthesize_system_controller(stg)
        harness = ControllerHarness(controller)
        harness.run(lambda newly: {f"done_{n}" for n in newly})
        assert harness.system_done

    def test_sequencer_fsms_minimized_with_stats(self, equalizer_controller):
        *_, stg, mini, controller = equalizer_controller
        stats = controller.stats()
        assert set(stats["minimization"]) == {f.name
                                              for f in controller.fsms}
        for counts in stats["minimization"].values():
            assert counts["after"] <= counts["before"]
        assert stats["states_saved"] >= 0
        unminimized = synthesize_system_controller(mini, minimize=False)
        assert unminimized.stats()["minimization"] == {}
        for fsm in controller.fsms:
            assert len(fsm.states) <= \
                stats["minimization"][fsm.name]["before"]
        assert controller.total_states <= unminimized.total_states

    def test_controller_fingerprint_is_content_based(self,
                                                     equalizer_controller):
        *_, mini, controller = equalizer_controller
        again = synthesize_system_controller(mini)
        assert controller.fingerprint() == again.fingerprint()

    def test_renamed_global_states_still_project(self):
        """Chain projection anchors on state *kinds*, not the literal
        names "X"/"D" -- a renamed entry/terminal cannot break it."""
        stg = Stg("renamed")
        stg.add_state(StgState("SYS_R", StateKind.GLOBAL_RESET))
        stg.add_state(StgState("SYS_X", StateKind.GLOBAL_EXEC))
        stg.add_state(StgState("SYS_D", StateKind.GLOBAL_DONE))
        stg.add_state(StgState("r_cpu", StateKind.RESET, resource="cpu"))
        stg.add_state(StgState("x_a", StateKind.EXEC, node="a",
                               resource="cpu"))
        stg.initial = "SYS_R"
        stg.add_transition(StgTransition("SYS_R", "r_cpu",
                                         actions=("reset_cpu",)))
        stg.add_transition(StgTransition("r_cpu", "SYS_X"))
        stg.add_transition(StgTransition("SYS_X", "x_a",
                                         actions=("start_a",)))
        stg.add_transition(StgTransition("x_a", "SYS_D",
                                         conditions=("done_a",)))
        controller = synthesize_system_controller(stg)
        assert "x_a" in controller.sequencers["cpu"].states
        harness = ControllerHarness(controller)
        harness.run(lambda newly: {f"done_{n}" for n in newly})
        assert harness.system_done

    def test_global_state_lookup_errors(self):
        stg = Stg("bare")
        stg.add_state(StgState("R", StateKind.GLOBAL_RESET))
        with pytest.raises(StgError, match="no GLOBAL_EXEC"):
            global_state(stg, StateKind.GLOBAL_EXEC)

    def test_cyclic_chain_rejected(self):
        stg = Stg("cyclic")
        stg.add_state(StgState("R", StateKind.GLOBAL_RESET))
        stg.add_state(StgState("X", StateKind.GLOBAL_EXEC))
        stg.add_state(StgState("D", StateKind.GLOBAL_DONE))
        stg.add_state(StgState("x_a", StateKind.EXEC, node="a",
                               resource="cpu"))
        stg.add_state(StgState("x_b", StateKind.EXEC, node="b",
                               resource="cpu"))
        stg.initial = "R"
        stg.add_transition(StgTransition("R", "X"))
        stg.add_transition(StgTransition("X", "x_a"))
        stg.add_transition(StgTransition("x_a", "x_b"))
        stg.add_transition(StgTransition("x_b", "x_a"))  # never reaches D
        stg.add_transition(StgTransition("D", "D"))
        with pytest.raises(StgError, match="revisits"):
            synthesize_system_controller(stg)

    def test_fuzzy_controller_on_cool_board(self):
        graph = fuzzy_controller()
        partition, schedule = make_schedule(graph, cool_board(),
                                            {"fz_e", "defuzz"})
        mini, _ = minimize_stg(build_stg(schedule))
        controller = synthesize_system_controller(mini)
        harness = ControllerHarness(controller)
        actions = harness.run(lambda newly: {f"done_{n}" for n in newly})
        starts = [a for a in actions if a.startswith("start_")]
        assert len(starts) == 31


class TestDatapathController:
    def test_states_one_per_node_plus_idle(self, equalizer_controller):
        _, partition, *_ = equalizer_controller
        latencies = {"band0": 50, "gain0": 20}
        dpc = synthesize_datapath_controller(partition, "fpga0", latencies)
        assert len(dpc.fsm.states) == 3
        assert dpc.nodes == ["band0", "gain0"]

    def test_dispatch_cycle(self, equalizer_controller):
        _, partition, *_ = equalizer_controller
        dpc = synthesize_datapath_controller(partition, "fpga0",
                                             {"band0": 50, "gain0": 20})
        state, outputs = dpc.fsm.step("idle", {"start_band0"})
        assert state == "busy_band0"
        assert "load_count_50" in outputs
        state, outputs = dpc.fsm.step(state, {"count_done"})
        assert state == "idle"
        assert "done_band0" in outputs

    def test_missing_latency_rejected(self, equalizer_controller):
        _, partition, *_ = equalizer_controller
        with pytest.raises(ValueError):
            synthesize_datapath_controller(partition, "fpga0",
                                           {"band0": 50})


class TestIoController:
    def test_ports_enumerated(self):
        graph = four_band_equalizer()
        ioc = synthesize_io_controller(graph)
        assert ioc.input_ports == ("x",)
        assert ioc.output_ports == ("y",)

    def test_sample_handshake(self):
        graph = four_band_equalizer()
        ioc = synthesize_io_controller(graph)
        state, outputs = ioc.fsm.step("idle", {"start_x"})
        assert state == "sample_x"
        assert "sample_x" in outputs
        state, outputs = ioc.fsm.step(state, {"port_ready_x"})
        assert state == "idle"
        assert "done_x" in outputs

    def test_drive_handshake(self):
        graph = four_band_equalizer()
        ioc = synthesize_io_controller(graph)
        state, outputs = ioc.fsm.step("idle", {"start_y"})
        assert state == "drive_y"
        assert "valid_y" in outputs


class TestArbiters:
    def test_fixed_priority_order(self):
        arb = FixedPriorityArbiter(["sysctl", "dsp0", "fpga0"])
        assert arb.grant({"fpga0", "dsp0"}) == "dsp0"
        assert arb.grant({"fpga0"}) == "fpga0"
        assert arb.grant(set()) is None

    def test_round_robin_rotates(self):
        arb = RoundRobinArbiter(["a", "b", "c"])
        assert arb.grant({"a", "b", "c"}) == "a"
        assert arb.grant({"a", "b", "c"}) == "b"
        assert arb.grant({"a", "b", "c"}) == "c"
        assert arb.grant({"a", "b", "c"}) == "a"

    def test_round_robin_no_starvation(self):
        arb = RoundRobinArbiter(["a", "b", "c"])
        winners = [arb.grant({"a", "c"}) for _ in range(6)]
        assert winners.count("a") == 3
        assert winners.count("c") == 3

    def test_unknown_master_rejected(self):
        arb = FixedPriorityArbiter(["a"])
        with pytest.raises(ValueError):
            arb.grant({"ghost"})

    def test_duplicate_masters_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(["a", "a"])

    def test_fsm_export(self):
        arb = FixedPriorityArbiter(["a", "b"])
        fsm = arb.to_fsm()
        assert fsm.validate() == []
        state, _ = fsm.step("idle", {"req_b"})
        assert state == "grant_b"
        # Moore output asserted while residing in the grant state
        _, outputs = fsm.step(state, set())
        assert "gnt_b" in outputs

    def test_reset(self):
        arb = RoundRobinArbiter(["a", "b"])
        arb.grant({"a"})
        arb.reset()
        assert arb.grant({"a", "b"}) == "a"
