"""Tests for the tiered stage cache (memory L1 over persistent L2).

The contract under test: with a ``store_path``, flow results are
bit-identical to a storeless run, a *fresh process* (modelled here as a
fresh flow over a fresh L1) is served from the store without re-running
any stage, and every artifact type the flow caches round-trips through
the store to an identical content fingerprint -- which is what makes
downstream stage signatures match across restarts.
"""

import pickle

import pytest

from repro.apps import four_band_equalizer
from repro.flow import (ArtifactStore, BatchRunner, CoolFlow, FlowJob,
                        PersistentCache, StageCache, TieredCache)
from repro.flow.pipeline import CacheTier, fingerprint_of
from repro.partition import GreedyPartitioner
from repro.platform import minimal_board
from repro.store import PIPELINE_CACHE_SCHEMA, cache_key


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


@pytest.fixture()
def tier(store):
    return TieredCache(StageCache(), PersistentCache(store))


OUTPUTS = {"plan": ({"channels": 3}, "fp-plan"),
           "stats": ((1, 2, 3), "fp-stats")}


class TestTieredCache:
    def test_everything_is_a_cache_tier(self, store, tier):
        assert isinstance(StageCache(), CacheTier)
        assert isinstance(PersistentCache(store), CacheTier)
        assert isinstance(tier, CacheTier)

    def test_write_through_and_l1_service(self, tier):
        tier.put("communication", ("sig-a",), OUTPUTS)
        assert tier.get("communication", ("sig-a",)) == OUTPUTS
        stats = tier.stats()
        assert stats["l1"]["hits"] == 1
        assert stats["l2"]["hits"] == 0, "L1 must answer first"
        assert stats["hits"] == 1 and stats["misses"] == 0

    def test_l2_hit_is_promoted_into_l1(self, store, tier):
        tier.put("communication", ("sig-a",), OUTPUTS)
        survivor = TieredCache(StageCache(), PersistentCache(store))
        first = survivor.get("communication", ("sig-a",))
        assert first == OUTPUTS
        assert survivor.stats()["promotions"] == 1
        second = survivor.get("communication", ("sig-a",))
        assert second == OUTPUTS
        stats = survivor.stats()
        assert stats["l1"]["hits"] == 1, "promoted entry must serve from L1"
        assert stats["l2"]["hits"] == 1
        # a promotion is not a top-level miss: both requests were served
        assert stats["hits"] == 2 and stats["misses"] == 0
        assert stats["hit_rate"] == 1.0

    def test_miss_in_both_tiers(self, tier):
        assert tier.get("stg", ("nope",)) is None
        stats = tier.stats()
        assert stats["hits"] == 0 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.0

    def test_clear_drops_memory_but_not_disk(self, tier):
        tier.put("hls", ("sig-b",), OUTPUTS)
        tier.clear()
        assert tier.get("hls", ("sig-b",)) == OUTPUTS
        assert tier.stats()["l2"]["hits"] == 1

    def test_snapshot_windows_the_stats(self, tier):
        tier.put("stg", ("sig-c",), OUTPUTS)
        tier.get("stg", ("sig-c",))
        window = tier.snapshot()
        tier.get("stg", ("sig-c",))
        tier.get("stg", ("missing",))
        windowed = tier.stats(since=window)
        assert windowed["hits"] == 1
        assert windowed["misses"] == 1
        assert windowed["hit_rate"] == 0.5

    def test_merge_stats_folds_tier_views(self, tmp_path):
        views = []
        for worker in range(3):
            view = TieredCache(
                StageCache(),
                PersistentCache(ArtifactStore(tmp_path / "store")))
            view.put("stg", (f"sig-{worker}",), OUTPUTS)
            view.get("stg", (f"sig-{worker}",))
            view.get("stg", ("missing",))
            views.append(view.stats())
        merged = StageCache.merge_stats(views)
        assert merged["caches"] == 3
        assert merged["hits"] == 3 and merged["misses"] == 3
        assert merged["hit_rate"] == 0.5
        assert merged["l1"]["hits"] == 3
        assert merged["l2"]["misses"] == 3
        assert merged["promotions"] == 0


class TestPersistentCache:
    def test_schema_mismatch_is_a_miss(self, store):
        PersistentCache(store, schema=1).put("stg", ("sig",), OUTPUTS)
        future = PersistentCache(store, schema=2)
        assert future.get("stg", ("sig",)) is None, \
            "a reader built for another schema must never decode the record"
        assert future.misses == 1
        # the schema is folded into the key, so the old record survives
        assert PersistentCache(store, schema=1).get("stg", ("sig",)) \
            == OUTPUTS

    def test_schema_is_folded_into_the_key(self):
        assert cache_key("stg", ("sig",), schema=1) != \
            cache_key("stg", ("sig",), schema=2)
        assert cache_key("stg", ("sig",)) == \
            cache_key("stg", ("sig",), PIPELINE_CACHE_SCHEMA)

    def test_unpicklable_output_is_skipped_not_raised(self, store):
        cache = PersistentCache(store)
        poisoned = {"handle": (lambda: None, "fp-lambda")}
        cache.put("codegen", ("sig",), poisoned)
        assert cache.unstorable == 1
        assert cache.get("codegen", ("sig",)) is None
        assert not store.quarantined_files()

    def test_stale_pickle_is_invalidated_and_missed(self, store):
        cache = PersistentCache(store)
        key = cache_key("stg", ("sig",), cache.schema)
        store.put(key, b"not a pickle", schema=cache.schema)
        assert cache.get("stg", ("sig",)) is None
        assert cache.decode_failures == 1
        assert key not in store, "undecodable payload must be invalidated"

    def test_record_meta_names_the_stage(self, store):
        cache = PersistentCache(store)
        cache.put("communication", ("sig",), OUTPUTS)
        record = store.get(cache_key("communication", ("sig",),
                                     cache.schema))
        assert record.meta["stage"] == "communication"
        assert record.meta["outputs"] == ["plan", "stats"]

    def test_payload_bytes_are_deterministic(self, store, tmp_path):
        cache = PersistentCache(store)
        cache.put("stg", ("sig",), dict(reversed(list(OUTPUTS.items()))))
        other = PersistentCache(ArtifactStore(tmp_path / "other"))
        other.put("stg", ("sig",), dict(OUTPUTS))
        key = cache_key("stg", ("sig",), cache.schema)
        assert cache.store.get(key).payload == other.store.get(key).payload


def _flow(store_path=None, **kwargs):
    return CoolFlow(minimal_board(), partitioner=GreedyPartitioner(),
                    store_path=store_path, **kwargs)


def _run(flow):
    return flow.run(four_band_equalizer(words=8), stimuli={"x": [5] * 8})


class TestStoreBackedFlow:
    @pytest.fixture(scope="class")
    def baseline(self):
        return _run(_flow())

    def test_results_bit_identical_to_storeless_flow(self, tmp_path,
                                                     baseline):
        result = _run(_flow(tmp_path / "store"))
        assert result.report().splitlines()[:-1] == \
            baseline.report().splitlines(), \
            "only the tier line may differ from the storeless report"
        assert result.vhdl_files == baseline.vhdl_files
        assert result.c_files == baseline.c_files
        assert result.makespan == baseline.makespan
        assert result.sim_result.outputs == baseline.sim_result.outputs

    def test_fresh_flow_is_served_from_the_store(self, tmp_path, baseline):
        _run(_flow(tmp_path / "store"))
        warm = _run(_flow(tmp_path / "store"))  # fresh L1, same disk
        assert sum(warm.stage_runs.values()) == 0, \
            "a warm restart must not re-run any stage"
        stats = warm.cache_stats
        assert stats["l2"]["hits"] > 0
        assert stats["misses"] == 0
        assert stats["hit_rate"] == 1.0
        assert stats["promotions"] == stats["l2"]["hits"]
        assert warm.report() == _run(_flow(tmp_path / "store")).report()

    def test_report_breaks_the_hit_rate_down_per_tier(self, tmp_path):
        _run(_flow(tmp_path / "store"))
        warm = _run(_flow(tmp_path / "store"))
        line = [l for l in warm.report().splitlines()
                if l.startswith("stage cache:")]
        assert len(line) == 1
        assert "100% of stage lookups served" in line[0]
        assert "L2 store" in line[0] and "promoted" in line[0]

    def test_storeless_report_has_no_tier_line(self, baseline):
        assert "stage cache:" not in baseline.report()
        assert baseline.cache_stats is not None
        assert "l2" not in baseline.cache_stats

    def test_every_cached_artifact_round_trips_to_its_fingerprint(
            self, tmp_path):
        # the acceptance property: for every artifact type the flow
        # caches, deserialize(serialize(value)) fingerprints identically
        # -- otherwise downstream signatures diverge across restarts
        store = ArtifactStore(tmp_path / "store")
        _run(_flow(store.root))
        checked = set()
        for store_key in store.keys():
            record = store.get(store_key)
            rows = pickle.loads(record.payload)
            assert rows, f"record {record.meta} stored no outputs"
            for artifact, value, fingerprint in rows:
                revived = pickle.loads(pickle.dumps(value))
                assert fingerprint_of(revived) == fingerprint, \
                    f"artifact {artifact!r} of stage " \
                    f"{record.meta['stage']!r} drifts across the store"
                checked.add(artifact)
        # the sweep must have exercised the full artifact surface,
        # including the arbiter (whose fingerprint once drifted)
        assert {"arbiter", "plan", "stg", "hls_results", "vhdl_files",
                "sim_result", "partition_result"} <= checked


class TestStoreBackedBatch:
    def _jobs(self):
        equalizer = four_band_equalizer(words=8)
        return [FlowJob(graph=equalizer, arch=minimal_board(),
                        partitioner=GreedyPartitioner(), label="eq/greedy")]

    def test_serial_backend_accepts_every_store_spelling(self, tmp_path):
        baseline = BatchRunner(backend="serial").run(self._jobs())[0]
        spellings = [str(tmp_path / "a"), tmp_path / "b",
                     ArtifactStore(tmp_path / "c"),
                     PersistentCache(ArtifactStore(tmp_path / "d"))]
        for spelling in spellings:
            outcome = BatchRunner(backend="serial",
                                  store=spelling).run(self._jobs())[0]
            assert outcome.ok
            assert outcome.result.report().splitlines()[:-1] == \
                baseline.result.report().splitlines()

    def test_thread_backend_warm_restart(self, tmp_path):
        store = tmp_path / "store"
        BatchRunner(backend="thread", max_workers=2,
                    store=store).run(self._jobs())
        warm = BatchRunner(backend="thread", max_workers=2,
                           store=store).run(self._jobs())[0]
        assert warm.ok
        assert sum(warm.result.stage_runs.values()) == 0
        assert warm.result.cache_stats["l2"]["hits"] > 0

    def test_process_backend_matches_serial(self, tmp_path):
        store = tmp_path / "store"
        serial = BatchRunner(backend="serial").run(self._jobs())[0]
        BatchRunner(backend="process", max_workers=2,
                    store=store).run(self._jobs())
        warm = BatchRunner(backend="process", max_workers=2,
                           store=store).run(self._jobs())[0]
        assert warm.ok
        assert warm.result.report().splitlines()[:-1] == \
            serial.result.report().splitlines()

    def test_rejects_a_nonsense_store(self):
        with pytest.raises(TypeError, match="store"):
            BatchRunner(backend="serial", store=1234)
