"""Tests for communication synthesis (channels, protocols, refinement)."""

import pytest

from repro.apps import four_band_equalizer
from repro.comm import (DIRECT, MEMORY_MAPPED, channels_of,
                        refine_communication)
from repro.estimate import CostModel
from repro.graph import from_mapping
from repro.platform import cool_board
from repro.schedule import list_schedule


def make_schedule(mapping_plan):
    graph = four_band_equalizer(words=8)
    arch = cool_board()
    mapping = {}
    for node in graph.internal_nodes():
        mapping[node.name] = mapping_plan.get(node.name, "dsp0")
    partition = from_mapping(graph, mapping, arch.fpga_names,
                             arch.processor_names)
    schedule = list_schedule(partition, CostModel(graph, arch))
    return graph, arch, partition, schedule


class TestChannels:
    def test_channels_match_cut_edges(self):
        _, _, partition, _ = make_schedule({"band0": "fpga0"})
        channels = channels_of(partition)
        assert {c.edge for c in channels} == \
            {e.name for e in partition.cut_edges()}

    def test_channel_units(self):
        _, _, partition, _ = make_schedule({"band0": "fpga0"})
        channels = {c.edge: c for c in channels_of(partition)}
        edge = next(e for e in partition.cut_edges()
                    if e.src == "band0" and e.dst == "gain0")
        assert channels[edge.name].producer_unit == "fpga0"
        assert channels[edge.name].consumer_unit == "dsp0"
        assert channels[edge.name].bits == 8 * 16


class TestProtocols:
    def test_burst_cycles(self):
        assert MEMORY_MAPPED.burst_cycles(4) == 2 + 2 * 4
        assert DIRECT.burst_cycles(4) == 2 + 4

    def test_direct_avoids_bus(self):
        assert MEMORY_MAPPED.uses_bus
        assert not DIRECT.uses_bus


class TestRefinement:
    def test_hw_hw_channels_become_direct(self):
        # band0 on fpga0 feeds gain0 on fpga1: a hardware-hardware link
        _, arch, _, schedule = make_schedule({"band0": "fpga0",
                                              "gain0": "fpga1"})
        plan = refine_communication(schedule, arch)
        channel = plan.channel("band0__to__gain0_p0")
        assert channel.is_direct
        assert channel.cell is None

    def test_cpu_channels_are_memory_mapped(self):
        _, arch, partition, schedule = make_schedule({"band0": "fpga0"})
        plan = refine_communication(schedule, arch)
        edge = next(e for e in partition.cut_edges()
                    if e.src == "band0" and e.dst == "gain0")
        channel = plan.channel(edge.name)
        assert channel.is_memory_mapped
        assert channel.cell is not None
        assert channel.cell.address >= arch.memory.base_address

    def test_io_channels_are_memory_mapped(self):
        _, arch, partition, schedule = make_schedule({"band0": "fpga0"})
        plan = refine_communication(schedule, arch)
        io_edges = [e for e in partition.cut_edges()
                    if partition.resource_of(e.src) == "io"
                    or partition.resource_of(e.dst) == "io"]
        assert io_edges
        for edge in io_edges:
            assert plan.channel(edge.name).is_memory_mapped

    def test_allow_direct_false_forces_memory(self):
        _, arch, _, schedule = make_schedule({"band0": "fpga0",
                                              "gain0": "fpga1"})
        plan = refine_communication(schedule, arch, allow_direct=False)
        assert plan.direct() == []
        assert len(plan.memory_mapped()) == len(plan.channels)

    def test_every_cut_edge_refined(self):
        _, arch, partition, schedule = make_schedule(
            {"band0": "fpga0", "band1": "fpga1", "gain1": "fpga1"})
        plan = refine_communication(schedule, arch)
        assert set(plan.channels) == {e.name for e in partition.cut_edges()}

    def test_direct_channels_free_memory(self):
        _, arch, _, schedule = make_schedule({"band0": "fpga0",
                                              "gain0": "fpga1"})
        with_direct = refine_communication(schedule, arch)
        without = refine_communication(schedule, arch, allow_direct=False)
        assert with_direct.memory_map.words_used <= \
            without.memory_map.words_used

    def test_stats(self):
        _, arch, _, schedule = make_schedule({"band0": "fpga0",
                                              "gain0": "fpga1"})
        stats = refine_communication(schedule, arch).stats()
        assert stats["channels"] == stats["memory_mapped"] + stats["direct"]
        assert stats["direct"] >= 1

    def test_unknown_channel_lookup_raises(self):
        _, arch, _, schedule = make_schedule({"band0": "fpga0"})
        plan = refine_communication(schedule, arch)
        with pytest.raises(KeyError):
            plan.channel("ghost_edge")
