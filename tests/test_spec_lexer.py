"""Unit tests for the specification lexer."""

import pytest

from repro.spec import SpecSyntaxError, TokenKind, tokenize


class TestTokenize:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("ENTITY Entity entity")
        assert all(t.kind == TokenKind.KEYWORD for t in tokens[:-1])
        assert all(t.text == "entity" for t in tokens[:-1])

    def test_identifiers_normalized_lowercase(self):
        tokens = tokenize("Band0 BAND0")
        assert [t.text for t in tokens[:-1]] == ["band0", "band0"]
        assert tokens[0].kind == TokenKind.IDENT

    def test_integers(self):
        tokens = tokenize("0 42 65535")
        assert [t.value for t in tokens[:-1]] == [0, 42, 65535]

    def test_operators(self):
        kinds = [t.kind for t in tokenize("<= => ( ) , ; : -")][:-1]
        assert kinds == [TokenKind.ASSIGN, TokenKind.ARROW, TokenKind.LPAREN,
                         TokenKind.RPAREN, TokenKind.COMMA, TokenKind.SEMICOLON,
                         TokenKind.COLON, TokenKind.MINUS]

    def test_comments_skipped(self):
        tokens = tokenize("a -- this is a comment <= => entity\nb")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token_terminates(self):
        assert tokenize("")[-1].kind == TokenKind.EOF
        assert tokenize("x")[-1].kind == TokenKind.EOF

    def test_unexpected_character_raises_with_location(self):
        with pytest.raises(SpecSyntaxError) as exc:
            tokenize("a\n  @")
        assert exc.value.line == 2
        assert exc.value.column == 3

    def test_minus_only_comment_when_doubled(self):
        tokens = tokenize("a - b")
        assert [t.text for t in tokens[:-1]] == ["a", "-", "b"]

    def test_underscore_identifiers(self):
        tokens = tokenize("band_0 _x")
        assert [t.text for t in tokens[:-1]] == ["band_0", "_x"]
