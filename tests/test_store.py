"""Tests for the persistent artifact store (repro.store).

The store's contract is brutal in both directions: a *caller* mistake
(malformed key, nonsense configuration) raises :class:`StoreError`
immediately, while *on-disk* damage of any kind -- torn writes, bit
flips, records answering the wrong key, a corrupt index -- must never
raise on the hot path.  Damage degrades to a miss and the evidence is
quarantined for inspection.
"""

import hashlib
import json
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

import repro.store.locks as locks_mod
from repro.store import (DEFAULT_MAX_BYTES, MAGIC, STORE_SCHEMA_VERSION,
                         ArtifactStore, FileLock, RecordError, StoreError,
                         StoreRecord, decode_record, encode_record)


def key_of(name: str) -> str:
    """A well-formed (sha256-hex) store key derived from a test name."""
    return hashlib.sha256(name.encode("utf-8")).hexdigest()


class TestRecordFormat:
    def test_round_trip(self):
        key = key_of("round-trip")
        blob = encode_record(key, b"payload bytes", schema=3,
                             meta={"stage": "hls", "outputs": ["a", "b"]})
        record = decode_record(blob)
        assert isinstance(record, StoreRecord)
        assert record.key == key
        assert record.schema == 3
        assert record.payload == b"payload bytes"
        assert record.meta == {"stage": "hls", "outputs": ["a", "b"]}

    def test_encoding_is_deterministic(self):
        # canonical headers are what let two processes racing on one
        # fingerprint write byte-identical files
        key = key_of("deterministic")
        meta = {"b": 2, "a": 1}
        first = encode_record(key, b"x" * 100, schema=1, meta=meta)
        second = encode_record(key, b"x" * 100, schema=1,
                               meta={"a": 1, "b": 2})
        assert first == second

    def test_magic_identifies_the_format(self):
        blob = encode_record(key_of("magic"), b"data", schema=1)
        assert blob.startswith(MAGIC)
        with pytest.raises(RecordError, match="magic"):
            decode_record(b"not-a-record" + blob)

    @pytest.mark.parametrize("cut", ["length", "header", "payload"])
    def test_truncation_raises_record_error(self, cut):
        blob = encode_record(key_of("truncate"), b"p" * 64, schema=1)
        offsets = {"length": len(MAGIC) + 2,
                   "header": len(MAGIC) + 4 + 10,
                   "payload": len(blob) - 16}
        with pytest.raises(RecordError, match="truncated|size"):
            decode_record(blob[:offsets[cut]])

    def test_bit_flip_in_payload_fails_checksum(self):
        blob = bytearray(encode_record(key_of("flip"), b"q" * 64, schema=1))
        blob[-10] ^= 0x40
        with pytest.raises(RecordError, match="checksum"):
            decode_record(bytes(blob))

    def test_foreign_format_version_rejected(self):
        header = {"format": STORE_SCHEMA_VERSION + 1, "key": key_of("v"),
                  "schema": 1, "size": 1, "meta": {},
                  "sha256": hashlib.sha256(b"z").hexdigest()}
        header_bytes = json.dumps(header, sort_keys=True,
                                  separators=(",", ":")).encode()
        blob = (MAGIC + len(header_bytes).to_bytes(4, "big")
                + header_bytes + b"z")
        with pytest.raises(RecordError, match="format"):
            decode_record(blob)

    def test_header_must_be_a_json_object(self):
        header_bytes = b"[1,2,3]"
        blob = MAGIC + len(header_bytes).to_bytes(4, "big") + header_bytes
        with pytest.raises(RecordError, match="JSON object"):
            decode_record(blob)

    def test_missing_header_field_raises(self):
        header_bytes = json.dumps({"format": STORE_SCHEMA_VERSION}).encode()
        blob = MAGIC + len(header_bytes).to_bytes(4, "big") + header_bytes
        with pytest.raises(RecordError, match="missing field"):
            decode_record(blob)

    def test_payload_must_be_bytes(self):
        with pytest.raises(TypeError, match="bytes"):
            encode_record(key_of("type"), "a string", schema=1)


class TestArtifactStoreBasics:
    def test_put_get_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = key_of("basic")
        store.put(key, b"artifact", schema=2, meta={"stage": "stg"})
        record = store.get(key)
        assert record is not None
        assert record.payload == b"artifact"
        assert record.schema == 2
        assert record.meta["stage"] == "stg"
        assert key in store
        assert list(store.keys()) == [key]

    def test_missing_key_is_a_counted_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.get(key_of("nothing")) is None
        stats = store.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 0
        assert stats["entries"] == 0

    def test_last_write_wins(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = key_of("overwrite")
        store.put(key, b"first", schema=1)
        store.put(key, b"second", schema=1)
        assert store.get(key).payload == b"second"
        assert store.stats()["entries"] == 1

    @pytest.mark.parametrize("bad", ["", "short", "UPPERCASEHEXNO",
                                     "zz" * 8, 12345])
    def test_malformed_keys_are_caller_errors(self, tmp_path, bad):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(StoreError, match="key"):
            store.get(bad)
        with pytest.raises(StoreError, match="key"):
            store.put(bad, b"x", schema=1)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_nonpositive_budget_rejected(self, tmp_path, bad):
        with pytest.raises(StoreError, match="max_bytes"):
            ArtifactStore(tmp_path / "store", max_bytes=bad)

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", max_bytes=None)
        for i in range(8):
            store.put(key_of(f"unbounded-{i}"), b"x" * 512, schema=1)
        stats = store.stats()
        assert stats["entries"] == 8
        assert stats["evictions"] == 0
        assert stats["max_bytes"] is None

    def test_invalidate_drops_the_record(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = key_of("invalidate")
        store.put(key, b"x", schema=1)
        store.invalidate(key)
        assert key not in store
        assert store.get(key) is None
        assert store.stats()["invalidated"] == 1

    def test_default_budget_is_sane(self):
        assert DEFAULT_MAX_BYTES >= 64 * 1024 * 1024


class TestQuarantine:
    """On-disk damage is preserved for inspection, never re-served and
    never raised."""

    def _object_path(self, store, key):
        return store.root / "objects" / key[:2] / f"{key}.rec"

    def test_truncated_record_is_quarantined_not_raised(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = key_of("torn")
        store.put(key, b"p" * 256, schema=1)
        path = self._object_path(store, key)
        path.write_bytes(path.read_bytes()[:-40])  # torn write
        assert store.get(key) is None  # miss, not RecordError
        quarantined = store.quarantined_files()
        assert len(quarantined) == 1
        assert quarantined[0].name.startswith(key)
        reason = quarantined[0].with_suffix(".reason").read_text()
        assert "torn" in reason or "size" in reason
        # the damaged file is gone from the object tree: clean miss next
        assert store.get(key) is None
        assert store.stats()["quarantined"] == 1
        assert store.stats()["entries"] == 0

    def test_bit_flipped_payload_is_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = key_of("flipped")
        store.put(key, b"q" * 256, schema=1)
        path = self._object_path(store, key)
        blob = bytearray(path.read_bytes())
        blob[-5] ^= 0x01
        path.write_bytes(bytes(blob))
        assert store.get(key) is None
        assert store.stats()["quarantined"] == 1
        reason = store.quarantined_files()[0] \
            .with_suffix(".reason").read_text()
        assert "checksum" in reason

    def test_record_answering_the_wrong_key_is_quarantined(self, tmp_path):
        # a valid record copied to another key's path must not be served
        store = ArtifactStore(tmp_path / "store")
        source, target = key_of("right"), key_of("wrong")
        store.put(source, b"payload", schema=1)
        target_path = self._object_path(store, target)
        target_path.parent.mkdir(parents=True, exist_ok=True)
        target_path.write_bytes(self._object_path(store, source).read_bytes())
        assert store.get(target) is None
        assert store.get(source).payload == b"payload"
        assert store.stats()["quarantined"] == 1

    def test_total_garbage_is_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = key_of("garbage")
        path = self._object_path(store, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"\x00\xff" * 100)
        assert store.get(key) is None
        assert store.stats()["quarantined"] == 1

    def test_quarantine_then_rewrite_recovers(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = key_of("recover")
        store.put(key, b"v1" * 100, schema=1)
        path = self._object_path(store, key)
        path.write_bytes(b"damaged")
        assert store.get(key) is None
        store.put(key, b"v1" * 100, schema=1)  # recompute republished
        assert store.get(key).payload == b"v1" * 100


class TestEviction:
    def _age(self, store, key, mtime):
        import os
        path = store.root / "objects" / key[:2] / f"{key}.rec"
        os.utime(path, (mtime, mtime))

    def test_lru_eviction_respects_byte_bound(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", max_bytes=2048)
        keys = [key_of(f"evict-{i}") for i in range(10)]
        for i, key in enumerate(keys):
            store.put(key, bytes([i]) * 400, schema=1)
            self._age(store, key, 1_000_000 + i)
        stats = store.stats()
        assert stats["bytes"] <= 2048
        assert stats["evictions"] > 0
        assert stats["entries"] < 10

    def test_oldest_records_are_the_victims(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", max_bytes=None)
        keys = [key_of(f"lru-{i}") for i in range(4)]
        for i, key in enumerate(keys):
            store.put(key, bytes([i]) * 900, schema=1)
            self._age(store, key, 1_000_000 + i)
        # tighten the budget just under current occupancy: the next put
        # must evict exactly the two stalest keys, newest stays
        store.max_bytes = store.stats()["bytes"] - 10
        overflow = key_of("lru-overflow")
        store.put(overflow, b"z" * 900, schema=1)
        assert overflow in store
        assert keys[0] not in store
        assert keys[1] not in store
        assert keys[2] in store
        assert keys[3] in store

    def test_a_hit_refreshes_recency(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", max_bytes=None)
        keys = [key_of(f"touch-{i}") for i in range(4)]
        for i, key in enumerate(keys):
            store.put(key, bytes([i]) * 900, schema=1)
            self._age(store, key, 1_000_000 + i)
        assert store.get(keys[0]) is not None  # os.utime bumps the clock
        # room for exactly the four seeded records: one victim needed
        store.max_bytes = store.stats()["bytes"] + 10
        store.put(key_of("touch-overflow"), b"z" * 900, schema=1)
        assert keys[0] in store, "freshly-hit record must not be evicted"
        assert keys[1] not in store, "the stalest untouched record goes"
        assert keys[2] in store and keys[3] in store

    def test_just_written_key_is_never_the_victim(self, tmp_path):
        # a record larger than the whole budget still lands; the bound
        # is enforced against everything else
        store = ArtifactStore(tmp_path / "store", max_bytes=1024)
        small = key_of("protected-small")
        store.put(small, b"s" * 100, schema=1)
        huge = key_of("protected-huge")
        store.put(huge, b"h" * 4096, schema=1)
        assert huge in store
        assert small not in store

    def test_eviction_never_drops_an_entry_mid_read(self, tmp_path):
        # readers hammer one key while a writer churns the store past
        # its budget: every read must return the full payload or a
        # clean miss -- never an exception, never partial bytes
        store = ArtifactStore(tmp_path / "store", max_bytes=8192)
        hot = key_of("hot-record")
        payload = b"hot" * 500
        store.put(hot, payload, schema=1)
        failures: list[str] = []
        stop = threading.Event()

        def reader():
            reads = 0
            while not stop.is_set() and reads < 400:
                reads += 1
                try:
                    record = store.get(hot)
                except Exception as exc:  # noqa: BLE001 - the assertion
                    failures.append(f"get raised {exc!r}")
                    return
                if record is not None and record.payload != payload:
                    failures.append("partial or foreign payload served")
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for i in range(60):  # churn: forces eviction scans
                store.put(key_of(f"churn-{i}"), bytes([i % 251]) * 700,
                          schema=1)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not failures, failures
        assert store.stats()["bytes"] <= 8192


class TestIndexRecovery:
    def test_corrupt_index_is_rebuilt_from_objects(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        keys = sorted(key_of(f"idx-{i}") for i in range(3))
        for key in keys:
            store.put(key, b"v", schema=1)
        (store.root / "index.json").write_text("{not json", encoding="utf-8")
        stats = store.stats()  # forces a locked index load -> rebuild
        assert stats["entries"] == 3
        assert list(store.keys()) == keys
        assert store.get(keys[0]).payload == b"v"

    def test_deleted_index_is_rebuilt(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = key_of("reindex")
        store.put(key, b"v" * 32, schema=1)
        (store.root / "index.json").unlink()
        fresh = ArtifactStore(store.root)
        assert fresh.stats()["entries"] == 1
        assert fresh.get(key).payload == b"v" * 32

    def test_rebuilt_index_feeds_eviction(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", max_bytes=2048)
        for i in range(3):
            store.put(key_of(f"seed-{i}"), bytes([i]) * 500, schema=1)
        (store.root / "index.json").write_text("[]", encoding="utf-8")
        store.put(key_of("trigger"), b"t" * 900, schema=1)
        assert store.stats()["bytes"] <= 2048


def _hammer_one_key(args):
    """Worker: publish the same record many times into a shared root."""
    root, key, payload, rounds = args
    store = ArtifactStore(root)
    for _ in range(rounds):
        store.put(key, payload, schema=1, meta={"stage": "race"})
    record = store.get(key)
    return record is not None and record.payload == payload


class TestConcurrency:
    def test_two_processes_converge_to_one_valid_record(self, tmp_path):
        # the acceptance property: concurrent writers of one fingerprint
        # end with exactly one valid object file (content-addressed
        # writes are byte-identical, so either rename winner is correct)
        root = str(tmp_path / "store")
        key = key_of("same-fingerprint")
        payload = pickle.dumps(sorted({"makespan": 42}.items()))
        with ProcessPoolExecutor(max_workers=2) as pool:
            verdicts = list(pool.map(
                _hammer_one_key,
                [(root, key, payload, 40), (root, key, payload, 40)]))
        assert verdicts == [True, True]
        store = ArtifactStore(root)
        objects = list((store.root / "objects").glob("*/*.rec"))
        assert len(objects) == 1
        record = decode_record(objects[0].read_bytes())  # fully valid
        assert record.key == key
        assert record.payload == payload
        assert store.stats()["entries"] == 1
        assert not store.quarantined_files()

    def test_parallel_threads_on_distinct_keys(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        errors: list[BaseException] = []

        def writer(worker: int):
            try:
                for i in range(20):
                    key = key_of(f"w{worker}-{i}")
                    store.put(key, f"{worker}/{i}".encode(), schema=1)
                    assert store.get(key) is not None
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.stats()["entries"] == 80

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        for i in range(5):
            store.put(key_of(f"clean-{i}"), b"x", schema=1)
        assert list((store.root / "tmp").iterdir()) == []


class TestFileLock:
    def test_mutual_exclusion_between_threads(self, tmp_path):
        lock = FileLock(tmp_path / ".lock")
        counter = {"value": 0}

        def bump():
            for _ in range(200):
                with lock:
                    seen = counter["value"]
                    counter["value"] = seen + 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter["value"] == 800

    def test_lock_file_is_created(self, tmp_path):
        path = tmp_path / "deep" / "dir" / ".lock"
        with FileLock(path):
            pass
        if locks_mod.fcntl is not None:
            assert path.exists()

    def test_degrades_without_fcntl(self, tmp_path, monkeypatch):
        # non-POSIX platforms: the flock layer disappears, the
        # in-process thread lock still serializes
        monkeypatch.setattr(locks_mod, "fcntl", None)
        lock = FileLock(tmp_path / ".lock")
        with lock:
            assert lock._fd is None
        store = ArtifactStore(tmp_path / "store")
        key = key_of("no-fcntl")
        store.put(key, b"v", schema=1)
        assert store.get(key).payload == b"v"

    def test_exception_inside_the_lock_releases_it(self, tmp_path):
        lock = FileLock(tmp_path / ".lock")
        with pytest.raises(RuntimeError):
            with lock:
                raise RuntimeError("boom")
        with lock:  # must not deadlock
            pass
