"""Minimizer equivalence at suite scale (randomized harness).

The kernel minimizer is the single algorithm behind both STG
equivalence merging and controller FSM minimization, so its
behaviour-preservation guarantee is asserted across a generated
``workload_suite`` population, not just the curated apps:

* every suite STG, minimized through the kernel, is trace-equivalent to
  its unminimized original under the closed-loop ideal environment
  (per-resource start projections, action multisets, dependency order);
* every controller FSM (phase + sequencers), minimized through the
  kernel, produces the same ``simulate`` output as the original on
  seeded random input traces.
"""

import random

import pytest

from repro.controllers import synthesize_system_controller
from repro.partition import GreedyPartitioner
from repro.partition.base import PartitioningProblem
from repro.platform import minimal_board
from repro.stg import StgExecutor, build_stg, minimize_stg
from repro.workloads import workload_suite

SUITE = workload_suite(20, seed=3)


def scheduled(spec):
    graph = spec.build()
    problem = PartitioningProblem(graph, minimal_board())
    result = GreedyPartitioner().partition(problem)
    return graph, result.partition, result.schedule


def auto_run(stg, max_rounds=500):
    """Ideal environment: every started node reports done next step."""
    executor = StgExecutor(stg)
    pending: set[str] = set()
    for _ in range(max_rounds):
        actions = executor.step(pending)
        pending = {"done_" + a[len("start_"):]
                   for a in actions if a.startswith("start_")}
        if executor.done:
            break
        if not actions and not pending:
            break
    return executor


def flat_actions(executor):
    return [a for fired in executor.action_trace() for a in fired]


@pytest.mark.parametrize("spec", SUITE,
                         ids=lambda s: f"{s.family}-{s.seed}")
def test_minimized_stg_trace_equivalent(spec):
    graph, partition, schedule = scheduled(spec)
    stg = build_stg(schedule)
    mini, report = minimize_stg(stg)
    assert report.states_after <= report.states_before
    assert mini.validate() == []

    ex_full, ex_mini = auto_run(stg), auto_run(mini)
    assert ex_full.done and ex_mini.done

    def starts_by_resource(executor):
        projected = {}
        for action in flat_actions(executor):
            if action.startswith("start_"):
                node = action[len("start_"):]
                projected.setdefault(partition.resource_of(node),
                                     []).append(node)
        return projected

    assert starts_by_resource(ex_full) == starts_by_resource(ex_mini)
    assert sorted(flat_actions(ex_full)) == sorted(flat_actions(ex_mini))
    for executor in (ex_full, ex_mini):
        starts = [a for a in flat_actions(executor)
                  if a.startswith("start_")]
        position = {a[len("start_"):]: i for i, a in enumerate(starts)}
        for edge in graph.edges:
            assert position[edge.src] < position[edge.dst]


@pytest.mark.parametrize("spec", SUITE[::2],
                         ids=lambda s: f"{s.family}-{s.seed}")
def test_minimized_controller_fsms_simulate_identically(spec):
    _, _, schedule = scheduled(spec)
    mini, _ = minimize_stg(build_stg(schedule))
    controller = synthesize_system_controller(mini, minimize=False)
    rng = random.Random(f"fsm-equivalence:{spec.seed}")
    for fsm in controller.fsms:
        reduced = fsm.minimize()
        assert len(reduced.states) <= len(fsm.states)
        assert reduced.validate() == []
        universe = fsm.inputs
        for _ in range(5):
            trace = [{s for s in universe if rng.random() < 0.4}
                     for _ in range(3 * len(fsm.states))]
            assert [outputs for _, outputs in fsm.simulate(trace)] == \
                [outputs for _, outputs in reduced.simulate(trace)]
