"""Unit tests for the repro.platform package."""

import pytest

from repro.platform import (Bus, Fpga, MemoryDevice, PlatformError, Processor,
                            TargetArchitecture, cool_board, dsp56001,
                            minimal_board, multi_board, xc4005)


class TestProcessor:
    def test_dsp56001_compiled_c_cost_table(self):
        dsp = dsp56001()
        # compiled-C model: MAC costs a few cycles, division is emulated
        assert dsp.cycles_for("mac") == 3
        assert dsp.cycles_for("div") == 25

    def test_default_cycles_fill_table(self):
        proc = Processor("p", "X", 1e6, cycles=(("mul", 5),))
        assert proc.cycles_for("mul") == 5
        assert proc.cycles_for("add") == proc.default_cycles

    def test_unknown_category_rejected(self):
        with pytest.raises(PlatformError):
            Processor("p", "X", 1e6, cycles=(("frobnicate", 1),))
        with pytest.raises(PlatformError):
            dsp56001().cycles_for("frobnicate")

    def test_bad_clock_rejected(self):
        with pytest.raises(PlatformError):
            Processor("p", "X", 0)

    def test_seconds(self):
        proc = Processor("p", "X", 10e6)
        assert proc.seconds(10) == pytest.approx(1e-6)

    def test_role_flags(self):
        assert dsp56001().is_software and not dsp56001().is_hardware


class TestFpga:
    def test_xc4005_capacity_matches_paper(self):
        assert xc4005().clb_capacity == 196

    def test_tables_have_defaults_and_overrides(self):
        dev = Fpga("f", "X", 100, 1e6, latency=(("div", 3),), area=(("mul", 10),))
        assert dev.latency_for("div") == 3
        assert dev.area_for("mul") == 10
        assert dev.latency_for("add") == 1

    def test_unknown_category_rejected(self):
        with pytest.raises(PlatformError):
            Fpga("f", "X", 100, 1e6, latency=(("bogus", 1),))
        with pytest.raises(PlatformError):
            xc4005().area_for("bogus")

    def test_bad_capacity_rejected(self):
        with pytest.raises(PlatformError):
            Fpga("f", "X", 0, 1e6)

    def test_role_flags(self):
        assert xc4005().is_hardware and not xc4005().is_software


class TestMemory:
    def test_words_and_end_address(self):
        mem = MemoryDevice("m", 1024, base_address=0x100, word_bytes=2)
        assert mem.words == 512
        assert mem.end_address == 0x100 + 512

    def test_contains(self):
        mem = MemoryDevice("m", 64, base_address=10, word_bytes=2)
        assert mem.contains(10, 32)
        assert not mem.contains(10, 33)
        assert not mem.contains(9)

    def test_bad_size_rejected(self):
        with pytest.raises(PlatformError):
            MemoryDevice("m", 0)


class TestBus:
    def test_beats_scale_with_width(self):
        bus = Bus("b", width_bits=16)
        assert bus.beats_for(16, 4) == 4
        assert bus.beats_for(24, 4) == 8  # 24-bit payload needs 2 beats/word
        assert bus.beats_for(8, 4) == 4   # narrow payload still one beat

    def test_transfer_cycles(self):
        bus = Bus("b", width_bits=16, cycles_per_word=2)
        assert bus.transfer_cycles(16, 4) == 8

    def test_bad_width_rejected(self):
        with pytest.raises(PlatformError):
            Bus("b", width_bits=0)


class TestArchitecture:
    def test_cool_board_matches_paper(self):
        board = cool_board()
        assert board.processor_names == ("dsp0",)
        assert board.fpga_names == ("fpga0", "fpga1")
        assert all(board.fpga(n).clb_capacity == 196 for n in board.fpga_names)
        assert board.memory.size_bytes == 64 * 1024

    def test_resource_lookup(self):
        board = minimal_board()
        assert board.resource("dsp0").model == "DSP56001"
        assert board.resource("fpga0").model == "XC4005"
        with pytest.raises(PlatformError):
            board.resource("nope")

    def test_is_software_hardware(self):
        board = minimal_board()
        assert board.is_software("dsp0")
        assert board.is_hardware("fpga0")
        assert not board.is_software("fpga0")

    def test_duplicate_names_rejected(self):
        with pytest.raises(PlatformError):
            TargetArchitecture("bad", processors=(dsp56001("x"),),
                               fpgas=(xc4005("x"),))

    def test_empty_architecture_rejected(self):
        with pytest.raises(PlatformError):
            TargetArchitecture("bad")

    def test_multi_board(self):
        board = multi_board(3, 4)
        assert len(board.processors) == 3
        assert len(board.fpgas) == 4
        assert len(board.resource_names) == 7

    def test_describe_mentions_components(self):
        text = cool_board().describe()
        assert "DSP56001" in text and "XC4005" in text and "64 kB" in text
