"""Unit + property tests for repro.graph.semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.graph import (SemanticsError, TaskGraph, arity_of, evaluate_node,
                         execute, make_node, op_mix_of, registered_kinds,
                         to_signed, wrap)
from repro.graph.semantics import OP_CATEGORIES


class TestWrapping:
    @given(st.integers(min_value=-(2**40), max_value=2**40),
           st.integers(min_value=1, max_value=32))
    def test_wrap_is_idempotent(self, value, width):
        assert wrap(wrap(value, width), width) == wrap(value, width)

    @given(st.integers(min_value=-(2**40), max_value=2**40),
           st.integers(min_value=2, max_value=32))
    def test_signed_roundtrip(self, value, width):
        signed = to_signed(value, width)
        assert -(1 << (width - 1)) <= signed < (1 << (width - 1))
        assert wrap(signed, width) == wrap(value, width)

    def test_known_values(self):
        assert wrap(-1, 8) == 255
        assert to_signed(255, 8) == -1
        assert to_signed(127, 8) == 127


class TestKindRegistry:
    def test_core_kinds_registered(self):
        kinds = registered_kinds()
        for kind in ("input", "output", "fir", "gain", "sum", "fuzzify",
                     "defuzz", "generic"):
            assert kind in kinds

    def test_unknown_kind_raises(self):
        node = make_node("n", "not_a_kind")
        with pytest.raises(SemanticsError):
            evaluate_node(node, [])

    def test_arity_of(self):
        assert arity_of(make_node("n", "add")) == 2
        assert arity_of(make_node("n", "sum")) is None
        assert arity_of(make_node("n", "input")) == 0

    def test_op_mix_categories_are_known(self):
        for kind, params in [
            ("fir", {"taps": (1, 2, 1)}),
            ("gain", {"factor": 3}),
            ("fuzzify", {"sets": ((0, 10, 20),)}),
            ("defuzz", {"centroids": (1, 2, 3)}),
            ("add", {}), ("sum", {"arity": 3}), ("generic", {}),
        ]:
            node = make_node("n", kind, params, words=1)
            mix = op_mix_of(node)
            assert mix, f"empty mix for {kind}"
            assert set(mix) <= set(OP_CATEGORIES)


class TestEvaluation:
    def test_fir_impulse_response_is_taps(self):
        node = make_node("n", "fir", {"taps": (3, 5, 7)}, words=5)
        out = evaluate_node(node, [[1, 0, 0, 0, 0]])
        assert out == [3, 5, 7, 0, 0]

    def test_fir_shift(self):
        node = make_node("n", "fir", {"taps": (4,), "shift": 2}, words=2)
        assert evaluate_node(node, [[8, 8]]) == [8, 8]

    def test_gain(self):
        node = make_node("n", "gain", {"factor": -2}, words=3)
        out = evaluate_node(node, [[1, 2, 3]])
        assert [to_signed(v, 16) for v in out] == [-2, -4, -6]

    def test_add_sub_elementwise(self):
        add = make_node("n", "add", words=2)
        sub = make_node("n", "sub", words=2)
        assert evaluate_node(add, [[1, 2], [10, 20]]) == [11, 22]
        assert [to_signed(v, 16) for v in evaluate_node(sub, [[1, 2], [10, 20]])] \
            == [-9, -18]

    def test_binary_length_mismatch(self):
        node = make_node("n", "add", words=2)
        with pytest.raises(SemanticsError):
            evaluate_node(node, [[1, 2], [1]])

    def test_arity_mismatch(self):
        node = make_node("n", "add", words=1)
        with pytest.raises(SemanticsError):
            evaluate_node(node, [[1]])

    def test_sum_variable_arity(self):
        node = make_node("n", "sum", {"arity": 3}, words=2)
        assert evaluate_node(node, [[1, 1], [2, 2], [3, 3]]) == [6, 6]

    def test_min_max_abs_negate(self):
        assert evaluate_node(make_node("n", "min", words=1), [[5], [3]]) == [3]
        assert evaluate_node(make_node("n", "max", words=1), [[5], [3]]) == [5]
        assert evaluate_node(make_node("n", "abs", words=1),
                             [[wrap(-7, 16)]]) == [7]
        out = evaluate_node(make_node("n", "negate", words=1), [[7]])
        assert to_signed(out[0], 16) == -7

    def test_threshold(self):
        node = make_node("n", "threshold", {"level": 10}, words=3)
        assert evaluate_node(node, [[5, 10, 15]]) == [0, 0, 1]

    def test_downsample(self):
        node = make_node("n", "downsample", {"factor": 2}, words=2)
        assert evaluate_node(node, [[1, 2, 3, 4]]) == [1, 3]

    def test_select(self):
        node = make_node("n", "select", {"index": 2}, words=1)
        assert evaluate_node(node, [[9, 8, 7, 6]]) == [7]

    def test_select_out_of_range(self):
        node = make_node("n", "select", {"index": 9}, words=1)
        with pytest.raises(SemanticsError):
            evaluate_node(node, [[1, 2]])

    def test_wrong_output_length_detected(self):
        node = make_node("n", "downsample", {"factor": 2}, words=4)
        with pytest.raises(SemanticsError):
            evaluate_node(node, [[1, 2, 3, 4]])

    def test_shift_both_directions(self):
        right = make_node("n", "shift", {"amount": 1}, words=1)
        left = make_node("n", "shift", {"amount": -1}, words=1)
        assert evaluate_node(right, [[8]]) == [4]
        assert evaluate_node(left, [[8]]) == [16]


class TestFuzzySemantics:
    SETS = ((-20, -10, 0), (-10, 0, 10), (0, 10, 20))

    def test_fuzzify_peak_membership(self):
        node = make_node("n", "fuzzify", {"sets": self.SETS, "scale": 100},
                         words=3)
        out = evaluate_node(node, [[0]])
        assert out == [0, 100, 0]

    def test_fuzzify_partial_membership(self):
        node = make_node("n", "fuzzify", {"sets": self.SETS, "scale": 100},
                         words=3)
        out = evaluate_node(node, [[5]])
        assert out[0] == 0
        assert out[1] == 50
        assert out[2] == 50

    def test_fuzzify_outside_support(self):
        node = make_node("n", "fuzzify", {"sets": self.SETS, "scale": 100},
                         words=3)
        assert evaluate_node(node, [[100]]) == [0, 0, 0]

    def test_defuzz_centroid(self):
        node = make_node("n", "defuzz", {"centroids": (0, 50, 100)}, words=1)
        assert evaluate_node(node, [[0, 100, 0]]) == [50]
        assert evaluate_node(node, [[100, 0, 100]]) == [50]

    def test_defuzz_zero_weights(self):
        node = make_node("n", "defuzz", {"centroids": (10, 20)}, words=1)
        assert evaluate_node(node, [[0, 0]]) == [0]

    def test_defuzz_shape_mismatch(self):
        node = make_node("n", "defuzz", {"centroids": (10, 20)}, words=1)
        with pytest.raises(SemanticsError):
            evaluate_node(node, [[1, 2, 3]])


class TestExecute:
    def test_execute_diamond(self):
        g = TaskGraph()
        g.add_node(name="in0", kind="input", words=2)
        g.add_node(name="g2", kind="gain", params={"factor": 2}, words=2)
        g.add_node(name="g3", kind="gain", params={"factor": 3}, words=2)
        g.add_node(name="s", kind="add", words=2)
        g.add_node(name="out0", kind="output", words=2)
        g.add_edge("in0", "g2")
        g.add_edge("in0", "g3")
        g.add_edge("g2", "s")
        g.add_edge("g3", "s")
        g.add_edge("s", "out0")
        values = execute(g, {"in0": [1, 10]})
        assert values["out0"] == [5, 50]

    def test_execute_missing_stimulus(self):
        g = TaskGraph()
        g.add_node(name="in0", kind="input", words=1)
        with pytest.raises(SemanticsError):
            execute(g, {})

    def test_execute_wrong_stimulus_length(self):
        g = TaskGraph()
        g.add_node(name="in0", kind="input", words=2)
        with pytest.raises(SemanticsError):
            execute(g, {"in0": [1]})

    @given(st.lists(st.integers(min_value=-1000, max_value=1000),
                    min_size=4, max_size=4))
    def test_execute_linearity_of_gain(self, vec):
        g = TaskGraph()
        g.add_node(name="in0", kind="input", words=4)
        g.add_node(name="g", kind="gain", params={"factor": 5}, words=4)
        g.add_node(name="out0", kind="output", words=4)
        g.add_edge("in0", "g")
        g.add_edge("g", "out0")
        values = execute(g, {"in0": vec})
        expected = [to_signed(5 * v, 16) for v in vec]
        assert [to_signed(v, 16) for v in values["out0"]] == expected

    @given(st.integers(min_value=0, max_value=2**16 - 1),
           st.integers(min_value=0, max_value=2**16 - 1))
    def test_generic_is_deterministic(self, a, b):
        node = make_node("n", "generic", {"seed": 42}, words=3)
        first = evaluate_node(node, [[a], [b]])
        second = evaluate_node(node, [[a], [b]])
        assert first == second

    def test_generic_depends_on_inputs(self):
        node = make_node("n", "generic", {"seed": 42}, words=3)
        assert (evaluate_node(node, [[1], [2]])
                != evaluate_node(node, [[2], [1]]))
