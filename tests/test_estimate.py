"""Unit tests for the repro.estimate package."""

import pytest
from hypothesis import given, strategies as st

from repro.estimate import (CostModel, hw_area_clbs, hw_cycles, read_cycles,
                            sw_cycles, sw_seconds, transfer_cycles,
                            write_cycles)
from repro.graph import TaskGraph, make_node
from repro.graph.taskgraph import DataEdge
from repro.platform import cool_board, dsp56001, minimal_board, xc4005


def fir_node(taps=8, words=16):
    return make_node("f", "fir", {"taps": tuple(range(1, taps + 1))}, words=words)


class TestSoftwareEstimate:
    def test_mac_dominated_fir(self):
        dsp = dsp56001()
        node = fir_node(taps=8, words=16)
        cycles = sw_cycles(node, dsp)
        # 8 taps x 16 words MACs + 32 movs, priced by the cycle table,
        # plus the per-activation overhead
        expected = (8 * 16 * dsp.cycles_for("mac")
                    + 2 * 16 * dsp.cycles_for("mov")
                    + dsp.call_overhead_cycles)
        assert cycles == expected

    def test_more_taps_cost_more(self):
        dsp = dsp56001()
        assert sw_cycles(fir_node(16), dsp) > sw_cycles(fir_node(4), dsp)

    def test_seconds_scale_with_clock(self):
        node = fir_node()
        fast = dsp56001(clock_hz=40e6)
        slow = dsp56001(clock_hz=20e6)
        assert sw_seconds(node, fast) == pytest.approx(
            sw_seconds(node, slow) / 2)

    @given(st.integers(min_value=1, max_value=32),
           st.integers(min_value=1, max_value=64))
    def test_cycles_positive_and_monotone_in_words(self, taps, words):
        dsp = dsp56001()
        node = make_node("f", "fir", {"taps": (1,) * taps}, words=words)
        bigger = make_node("f", "fir", {"taps": (1,) * taps}, words=words + 1)
        assert 0 < sw_cycles(node, dsp) < sw_cycles(bigger, dsp)


class TestHardwareEstimate:
    def test_pipelined_fir_cycles(self):
        # 8 taps x 16 words = 128 MACs through a pipelined MAC (II=1,
        # latency 2) plus the start/done handshake
        node = fir_node(taps=8, words=16)
        assert hw_cycles(node, xc4005()) == 2 + (128 + 2 - 1)

    def test_hw_beats_dsp_on_division_heavy_nodes(self):
        # the DSP56001 emulates division (20 cycles); a hardware divider
        # pipelines it, so per-clock the FPGA must win on defuzz
        node = make_node("d", "defuzz", {"centroids": tuple(range(16))},
                         words=1)
        assert hw_cycles(node, xc4005()) < sw_cycles(node, dsp56001())

    def test_area_positive_and_monotone_in_width(self):
        fpga = xc4005()
        narrow = make_node("n", "gain", {"factor": 3}, width=8, words=4)
        wide = make_node("n", "gain", {"factor": 3}, width=32, words=4)
        assert 0 < hw_area_clbs(narrow, fpga) < hw_area_clbs(wide, fpga)

    def test_multiplier_costs_more_than_adder(self):
        fpga = xc4005()
        adder = make_node("n", "add", words=4)
        multiplier = make_node("n", "mul", words=4)
        assert hw_area_clbs(multiplier, fpga) > hw_area_clbs(adder, fpga)

    def test_single_fir_fits_xc4005(self):
        # sanity: one 4-tap FIR datapath must fit the paper's FPGA
        assert hw_area_clbs(fir_node(4, words=8), xc4005()) < 196


class TestCommunicationEstimate:
    def test_transfer_is_write_plus_read(self):
        arch = minimal_board()
        edge = DataEdge("a", "b", 0, 16, 8)
        assert transfer_cycles(edge, arch) == (write_cycles(edge, arch)
                                               + read_cycles(edge, arch))

    def test_wider_payloads_cost_more(self):
        arch = minimal_board()
        small = DataEdge("a", "b", 0, 16, 2)
        large = DataEdge("a", "b", 0, 16, 20)
        assert transfer_cycles(large, arch) > transfer_cycles(small, arch)


class TestCostModel:
    @pytest.fixture
    def setup(self):
        g = TaskGraph("t")
        g.add_node(name="in0", kind="input", words=8)
        g.add_node(name="f", kind="fir", params={"taps": (1, 2, 3, 4)}, words=8)
        g.add_node(name="out0", kind="output", words=8)
        g.add_edge("in0", "f")
        g.add_edge("f", "out0")
        return g, cool_board()

    def test_latency_for_all_resources(self, setup):
        graph, arch = setup
        model = CostModel(graph, arch)
        for res in arch.resource_names:
            assert model.latency("f", res) >= 1

    def test_io_latency_is_bus_bound(self, setup):
        graph, arch = setup
        model = CostModel(graph, arch)
        assert model.latency("in0", "io") == max(
            1, arch.bus.transfer_cycles(16, 8))

    def test_area_only_for_fpgas(self, setup):
        graph, arch = setup
        model = CostModel(graph, arch)
        assert model.area("f", "fpga0") > 0
        with pytest.raises(KeyError):
            model.area("f", "dsp0")

    def test_ticks_account_for_clock_ratio(self, setup):
        graph, arch = setup
        model = CostModel(graph, arch)
        from repro.estimate.software import sw_cycles as raw
        dsp = arch.processor("dsp0")
        raw_cycles = raw(graph.node("f"), dsp)
        ticks = model.latency("f", "dsp0")
        # 20 MHz CPU vs 10 MHz bus: ticks should be about half the cycles
        assert ticks == -(-raw_cycles // 2)

    def test_cache_returns_same_object(self, setup):
        graph, arch = setup
        model = CostModel(graph, arch)
        assert model.node_cost("f") is model.node_cost("f")

    def test_software_bound(self, setup):
        graph, arch = setup
        model = CostModel(graph, arch)
        assert model.software_bound() == model.latency("f", "dsp0")

    def test_summary_lists_internal_nodes(self, setup):
        graph, arch = setup
        model = CostModel(graph, arch)
        summary = model.summary()
        assert [row["node"] for row in summary["nodes"]] == ["f"]
