"""Integration tests for the end-to-end COOL flow (paper Fig. 1)."""

import pytest

from repro.apps import four_band_equalizer, fuzzy_controller
from repro.codegen import check_vhdl
from repro.flow import CoolFlow, DesignTimeModel
from repro.graph import execute
from repro.partition import GreedyPartitioner, MilpPartitioner
from repro.platform import cool_board, minimal_board


@pytest.fixture(scope="module")
def equalizer_flow_result():
    graph = four_band_equalizer(words=8)
    stimuli = {"x": [10, 20, 30, 40, 0, 0, 0, 0]}
    return CoolFlow(minimal_board()).run(graph, stimuli=stimuli), \
        graph, stimuli


class TestFlowStages:
    def test_all_stages_timed(self, equalizer_flow_result):
        result, *_ = equalizer_flow_result
        for stage in ("validate", "partitioning", "stg", "communication",
                      "hls", "controllers", "codegen", "cosim"):
            assert stage in result.stage_seconds
            assert result.stage_seconds[stage] >= 0

    def test_minimization_reduces_states(self, equalizer_flow_result):
        result, *_ = equalizer_flow_result
        assert result.minimization.states_after < \
            result.minimization.states_before

    def test_cosim_matches_reference(self, equalizer_flow_result):
        result, graph, stimuli = equalizer_flow_result
        assert result.sim_result is not None
        assert result.sim_result.outputs["y"] == \
            execute(graph, stimuli)["y"]

    def test_vhdl_files_all_check(self, equalizer_flow_result):
        result, *_ = equalizer_flow_result
        assert result.vhdl_files
        for name, text in result.vhdl_files.items():
            assert check_vhdl(text) == [], name

    def test_c_files_for_used_processors(self, equalizer_flow_result):
        result, *_ = equalizer_flow_result
        if result.partition_result.partition.sw_nodes():
            assert "dsp0.c" in result.c_files

    def test_netlist_valid(self, equalizer_flow_result):
        result, *_ = equalizer_flow_result
        assert result.netlist.validate() == []

    def test_area_respects_capacity(self, equalizer_flow_result):
        result, *_ = equalizer_flow_result
        for resource, clbs in result.clbs_per_fpga.items():
            assert clbs <= result.arch.fpga(resource).clb_capacity

    def test_report_mentions_key_facts(self, equalizer_flow_result):
        result, *_ = equalizer_flow_result
        text = result.report()
        assert "partitioning" in text
        assert "STG" in text
        assert "co-simulation" in text
        assert "design time" in text

    def test_design_time_populated(self, equalizer_flow_result):
        result, *_ = equalizer_flow_result
        assert result.design_time.total_s > 0
        if result.partition_result.partition.hw_nodes():
            assert result.design_time.hw_synthesis_s > 0


class TestFlowVariants:
    def test_flow_without_stimuli_skips_cosim(self):
        graph = four_band_equalizer(words=8)
        result = CoolFlow(minimal_board()).run(graph)
        assert result.sim_result is None

    def test_flow_with_deadline(self):
        graph = four_band_equalizer(words=8)
        arch = minimal_board()
        free = CoolFlow(arch).run(graph)
        deadline = free.makespan * 2
        result = CoolFlow(arch).run(graph, deadline=deadline)
        assert result.makespan <= deadline

    def test_flow_with_greedy_partitioner(self):
        graph = four_band_equalizer(words=8)
        stimuli = {"x": [5] * 8}
        result = CoolFlow(minimal_board(),
                          partitioner=GreedyPartitioner()).run(
            graph, stimuli=stimuli)
        assert result.sim_result.outputs["y"] == \
            execute(graph, stimuli)["y"]

    def test_flow_without_direct_comm(self):
        graph = four_band_equalizer(words=8)
        stimuli = {"x": [5] * 8}
        result = CoolFlow(cool_board(), allow_direct_comm=False).run(
            graph, stimuli=stimuli)
        assert result.plan.direct() == []
        assert result.sim_result.outputs["y"] == \
            execute(graph, stimuli)["y"]

    def test_flow_without_memory_reuse(self):
        graph = four_band_equalizer(words=8)
        stimuli = {"x": [5] * 8}
        result = CoolFlow(minimal_board(), reuse_memory=False).run(
            graph, stimuli=stimuli)
        assert result.sim_result.outputs["y"] == \
            execute(graph, stimuli)["y"]

    def test_guard_simplification_default_on(self, equalizer_flow_result):
        result, *_ = equalizer_flow_result
        report = result.guard_report
        assert report is not None and report["simplified"]
        assert report["care_sets"] and report["care_fallback"] is None
        assert report["guard_literals_after"] < \
            report["guard_literals_before"]
        assert "guard simplification:" in result.report()
        for text in result.vhdl_files.values():
            assert check_vhdl(text) == []

    def test_guard_simplification_opt_out(self):
        graph = four_band_equalizer(words=8)
        result = CoolFlow(minimal_board(), simplify_guards=False).run(graph)
        assert result.guard_report is None
        # baseline cascades spell every repeated wait out
        on = CoolFlow(minimal_board()).run(graph)
        from repro.codegen import guard_literal_count
        assert sum(map(guard_literal_count, result.vhdl_files.values())) > \
            sum(map(guard_literal_count, on.vhdl_files.values()))


class TestFuzzyCaseStudy:
    """The Section 3 experiment in miniature (the benchmark runs more)."""

    def test_fuzzy_full_flow_on_paper_board(self):
        graph = fuzzy_controller()
        stimuli = {"err": [30], "derr": [(-60) & 0xFFFF]}
        flow = CoolFlow(cool_board(), partitioner=GreedyPartitioner())
        result = flow.run(graph, stimuli=stimuli)
        assert result.sim_result.outputs["u"] == \
            execute(graph, stimuli)["u"]
        # fits the board: 2 FPGAs with 196 CLBs, 64 kB memory
        for resource, clbs in result.clbs_per_fpga.items():
            assert clbs <= 196
        assert result.plan.memory_map.words_used <= 32 * 1024

    def test_design_time_shape_matches_paper(self):
        """<= ~60 min total, > 90 % in hardware synthesis."""
        graph = fuzzy_controller()
        flow = CoolFlow(cool_board(), partitioner=GreedyPartitioner(),
                        design_time_model=DesignTimeModel())
        result = flow.run(graph)
        if result.partition_result.partition.hw_nodes():
            assert result.design_time.total_s <= 75 * 60
            assert result.design_time.hw_fraction > 0.90
