"""Tests for parallel batch execution and design-space exploration."""

import threading
import time

import pytest

from repro.apps import four_band_equalizer, fuzzy_controller
from repro.flow import (JOB_TIMEOUT_SEMANTICS, BatchRunner, CoolFlow,
                        DesignSpaceExplorer, FlowJob, StageCache,
                        payload_check)
from repro.graph import TaskGraph, execute
from repro.partition import GreedyPartitioner, MilpPartitioner
from repro.platform import cool_board, minimal_board
from repro.workloads import build_graphs, workload_suite


class UnpicklablePartitioner(GreedyPartitioner):
    """A partitioner no process pool can ship (holds a thread lock)."""

    def __init__(self):
        super().__init__()
        self._lock = threading.Lock()


class SleepyPartitioner(GreedyPartitioner):
    """Simulates a straggler job for the timeout tests."""

    def __init__(self, sleep_s: float = 2.0):
        super().__init__()
        self.sleep_s = sleep_s

    def solve(self, problem):
        time.sleep(self.sleep_s)
        return super().solve(problem)


def _jobs():
    equalizer = four_band_equalizer(words=8)
    return [
        FlowJob(graph=equalizer, arch=minimal_board(),
                partitioner=GreedyPartitioner(), label="eq/greedy"),
        FlowJob(graph=equalizer, arch=minimal_board(),
                partitioner=MilpPartitioner(), label="eq/milp"),
        FlowJob(graph=fuzzy_controller(), arch=cool_board(),
                partitioner=GreedyPartitioner(), label="fuzzy/greedy"),
        FlowJob(graph=equalizer, arch=cool_board(),
                partitioner=GreedyPartitioner(),
                stimuli={"x": [5] * 8}, label="eq/cosim"),
    ]


class TestBatchRunner:
    def test_serial_and_parallel_agree(self):
        serial = BatchRunner(backend="serial").run(_jobs())
        parallel = BatchRunner(max_workers=4).run(_jobs())
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert a.ok and b.ok
            assert a.job.label == b.job.label
            assert a.result.report() == b.result.report()
            assert a.result.vhdl_files == b.result.vhdl_files
            assert a.result.c_files == b.result.c_files

    def test_outcomes_keep_input_order(self):
        outcomes = BatchRunner(max_workers=4).run(_jobs())
        assert [o.job.label for o in outcomes] == \
            ["eq/greedy", "eq/milp", "fuzzy/greedy", "eq/cosim"]
        assert all(o.seconds > 0 for o in outcomes)

    def test_cosim_job_matches_reference(self):
        outcome = BatchRunner(backend="serial").run([_jobs()[3]])[0]
        graph = four_band_equalizer(words=8)
        assert outcome.result.sim_result.outputs["y"] == \
            execute(graph, {"x": [5] * 8})["y"]

    def test_failures_are_isolated(self):
        broken = TaskGraph("broken")
        broken.add_node(name="a", kind="gain",
                        params={"factor": 2, "shift": 1})
        broken.add_node(name="b", kind="gain",
                        params={"factor": 2, "shift": 1})
        broken.add_edge("a", "b")
        broken.add_edge("b", "a")  # cycle -> validation fails
        jobs = [_jobs()[0],
                FlowJob(graph=broken, arch=minimal_board(), label="bad"),
                _jobs()[2]]
        outcomes = BatchRunner(max_workers=3).run(jobs)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert outcomes[1].result is None
        assert "GraphError" in outcomes[1].error

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            BatchRunner(backend="carrier-pigeon")

    def test_job_names(self):
        job = FlowJob(graph=four_band_equalizer(words=8),
                      arch=minimal_board(), partitioner=GreedyPartitioner())
        assert job.name == "equalizer@minimal_board/greedy"
        assert FlowJob(graph=job.graph, arch=job.arch,
                       label="custom").name == "custom"

    def test_default_job_name_tracks_flow_default_partitioner(self):
        # partitioner=None means "whatever CoolFlow defaults to"; the
        # displayed algorithm must come from that same source of truth
        # (the old code hardcoded "milp" while the flow used milp[scipy])
        job = FlowJob(graph=four_band_equalizer(words=8),
                      arch=minimal_board())
        default_name = CoolFlow.default_partitioner().name
        assert default_name in job.name
        assert job.name == \
            f"equalizer@minimal_board/{default_name}"


class TestStreamingRunner:
    def test_progress_callback_streams_completions(self):
        events = []

        def progress(outcome, done, total):
            events.append((outcome.job.label, done, total))

        outcomes = BatchRunner(max_workers=4).run(_jobs(), progress=progress)
        assert [o.job.label for o in outcomes] == \
            ["eq/greedy", "eq/milp", "fuzzy/greedy", "eq/cosim"]
        assert [d for _, d, _ in events] == [1, 2, 3, 4]
        assert all(t == 4 for _, _, t in events)
        # completion order covers exactly the submitted jobs
        assert sorted(label for label, _, _ in events) == \
            sorted(o.job.label for o in outcomes)

    def test_progress_callback_on_serial_backend(self):
        events = []
        BatchRunner(backend="serial").run(
            _jobs()[:2], progress=lambda o, d, t: events.append((d, t)))
        assert events == [(1, 2), (2, 2)]

    def test_progress_callback_failure_does_not_abort_sweep(self):
        # a buggy observer must never sink a sweep whose jobs all
        # succeeded: the exception is swallowed, warned about once, and
        # later completions keep streaming to the same callback
        events = []

        def progress(outcome, done, total):
            events.append((outcome.job.label, done))
            if done == 1:
                raise RuntimeError("observer bug")

        with pytest.warns(RuntimeWarning, match="progress callback"):
            outcomes = BatchRunner(max_workers=4).run(
                _jobs(), progress=progress)
        assert [o.job.label for o in outcomes] == \
            ["eq/greedy", "eq/milp", "fuzzy/greedy", "eq/cosim"]
        assert all(o.ok for o in outcomes)
        assert [d for _, d in events] == [1, 2, 3, 4]

    def test_progress_callback_warns_once_for_repeat_failures(self):
        import warnings as _warnings

        def progress(outcome, done, total):
            raise RuntimeError("always broken")

        with _warnings.catch_warnings(record=True) as caught:
            _warnings.simplefilter("always")
            outcomes = BatchRunner(backend="serial").run(
                _jobs()[:3], progress=progress)
        assert all(o.ok for o in outcomes)
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1

    def test_process_pickling_failure_is_isolated(self):
        # the pickling error surfaces on the future, *outside*
        # _run_outcome's try/except -- it must still become one failed
        # outcome instead of sinking the whole sweep
        equalizer = four_band_equalizer(words=8)
        jobs = [FlowJob(graph=equalizer, arch=minimal_board(),
                        partitioner=GreedyPartitioner(), label="good"),
                FlowJob(graph=equalizer, arch=minimal_board(),
                        partitioner=UnpicklablePartitioner(), label="bad"),
                FlowJob(graph=equalizer, arch=cool_board(),
                        partitioner=GreedyPartitioner(), label="good2")]
        outcomes = BatchRunner(max_workers=2, backend="process").run(jobs)
        assert [o.job.label for o in outcomes] == ["good", "bad", "good2"]
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert outcomes[1].result is None
        assert "pickle" in outcomes[1].error.lower()

    def test_shared_stage_cache_across_jobs(self):
        cache = StageCache(max_entries=512)
        runner = BatchRunner(backend="serial", stage_cache=cache)
        job = FlowJob(graph=four_band_equalizer(words=8),
                      arch=minimal_board(),
                      partitioner=GreedyPartitioner())
        first, second = runner.run([job, job])
        assert first.ok and second.ok
        assert sum(second.result.stage_runs.values()) == 0, \
            "second identical job must be served from the shared cache"
        assert cache.stats()["hits"] > 0
        assert first.result.report() == second.result.report()

    def test_job_timeout_turns_straggler_into_failed_outcome(self):
        equalizer = four_band_equalizer(words=8)
        jobs = [FlowJob(graph=equalizer, arch=minimal_board(),
                        partitioner=GreedyPartitioner(), label="fast"),
                FlowJob(graph=equalizer, arch=minimal_board(),
                        partitioner=SleepyPartitioner(2.0), label="slow")]
        started = time.perf_counter()
        outcomes = BatchRunner(max_workers=2, backend="thread",
                               job_timeout=0.4).run(jobs)
        elapsed = time.perf_counter() - started
        assert outcomes[0].ok
        assert not outcomes[1].ok
        assert "Timeout" in outcomes[1].error
        assert elapsed < 1.5, "sweep must not wait for the straggler"

    def test_bad_job_timeout_rejected(self):
        with pytest.raises(ValueError, match="job_timeout"):
            BatchRunner(job_timeout=0.0)

    def test_queued_jobs_do_not_accrue_timeout_budget(self):
        # per-job budget starts when the job *runs*: four ~sub-second
        # jobs behind one worker all finish even though their summed
        # wall-clock exceeds the budget
        equalizer = four_band_equalizer(words=8)
        jobs = [FlowJob(graph=equalizer, arch=minimal_board(),
                        partitioner=SleepyPartitioner(0.15),
                        label=f"q{i}") for i in range(4)]
        outcomes = BatchRunner(max_workers=1, backend="thread",
                               job_timeout=0.45).run(jobs)
        assert all(o.ok for o in outcomes), \
            [o.error for o in outcomes if not o.ok]

    def test_saturated_pool_cannot_stall_the_sweep(self):
        # a straggler holds the only worker past its budget; the queued
        # job must not wait indefinitely behind it -- once the pool is
        # saturated by timed-out jobs, queued jobs accrue budget and
        # fail as starved, so run() returns in bounded time
        equalizer = four_band_equalizer(words=8)
        jobs = [FlowJob(graph=equalizer, arch=minimal_board(),
                        partitioner=SleepyPartitioner(2.5), label="stuck"),
                FlowJob(graph=equalizer, arch=minimal_board(),
                        partitioner=GreedyPartitioner(), label="queued")]
        started = time.perf_counter()
        outcomes = BatchRunner(max_workers=1, backend="thread",
                               job_timeout=0.3).run(jobs)
        elapsed = time.perf_counter() - started
        assert elapsed < 2.0, "sweep must not wait out the straggler"
        assert not outcomes[0].ok and "budget" in outcomes[0].error
        assert not outcomes[1].ok and "worker" in outcomes[1].error

    def test_starvation_clock_clears_when_pool_recovers(self):
        # a straggler times out but then actually returns: the queued
        # jobs' starvation clocks must be dropped so quick jobs are not
        # spuriously failed on a pool that recovered
        equalizer = four_band_equalizer(words=8)
        jobs = [FlowJob(graph=equalizer, arch=minimal_board(),
                        partitioner=SleepyPartitioner(1.0), label="late"),
                FlowJob(graph=equalizer, arch=minimal_board(),
                        partitioner=GreedyPartitioner(), label="q1"),
                FlowJob(graph=equalizer, arch=minimal_board(),
                        partitioner=GreedyPartitioner(), label="q2")]
        outcomes = BatchRunner(max_workers=1, backend="thread",
                               job_timeout=0.8).run(jobs)
        assert not outcomes[0].ok and "budget" in outcomes[0].error
        assert outcomes[1].ok, outcomes[1].error
        assert outcomes[2].ok, outcomes[2].error

    def test_single_job_process_batch_still_isolates_pickling(self):
        # regression: the old in-process shortcut for tiny batches ran
        # the job in the parent and silently skipped pickling
        job = FlowJob(graph=four_band_equalizer(words=8),
                      arch=minimal_board(),
                      partitioner=UnpicklablePartitioner(), label="solo")
        outcome = BatchRunner(max_workers=2, backend="process").run([job])[0]
        assert not outcome.ok
        assert "pickle" in outcome.error.lower()

    def test_process_rejects_unpicklable_payload_at_submission(self):
        # satellite: the poison is caught *before* the pool sees the job,
        # with the offending field named -- not a mid-sweep TypeError
        bad = FlowJob(graph=four_band_equalizer(words=8),
                      arch=minimal_board(),
                      partitioner=UnpicklablePartitioner(), label="bad")
        error = payload_check(bad)
        assert error is not None
        assert "partitioner" in error
        assert "pickle" in error.lower()
        assert payload_check(_jobs()[0]) is None
        events = []
        outcomes = BatchRunner(max_workers=2, backend="process").run(
            [bad] + _jobs()[:1],
            progress=lambda o, d, t: events.append(o.job.label))
        assert not outcomes[0].ok and "partitioner" in outcomes[0].error
        assert outcomes[1].ok
        assert events[0] == "bad", "rejection must stream before any result"

    def test_process_expired_straggler_fails_and_sweep_continues(self):
        # satellite: expired-straggler path on the *process* backend --
        # the straggler becomes a failed outcome with a reason while the
        # fast job still completes
        equalizer = four_band_equalizer(words=8)
        jobs = [FlowJob(graph=equalizer, arch=minimal_board(),
                        partitioner=SleepyPartitioner(2.5), label="slow"),
                FlowJob(graph=equalizer, arch=minimal_board(),
                        partitioner=GreedyPartitioner(), label="fast")]
        started = time.perf_counter()
        outcomes = BatchRunner(max_workers=2, backend="process",
                               job_timeout=0.5).run(jobs)
        elapsed = time.perf_counter() - started
        assert not outcomes[0].ok
        assert "Timeout" in outcomes[0].error
        assert "budget" in outcomes[0].error
        assert outcomes[1].ok, outcomes[1].error
        assert elapsed < 2.2, "sweep must not wait out the straggler"

    def test_timeout_semantics_documented_per_backend(self):
        # one authoritative record; every accepted backend has an entry
        for backend in ("serial", "thread", "process", "shard"):
            BatchRunner(backend=backend)
            assert backend in JOB_TIMEOUT_SEMANTICS
            assert len(JOB_TIMEOUT_SEMANTICS[backend]) > 20


class TestSpecBasedJobs:
    def test_exactly_one_design_source_required(self):
        arch = minimal_board()
        spec = workload_suite(1, seed=5)[0]
        graph = four_band_equalizer(words=8)
        with pytest.raises(ValueError, match="exactly one design source"):
            FlowJob(arch=arch)
        with pytest.raises(ValueError, match="exactly one design source"):
            FlowJob(graph=graph, workload=spec, arch=arch)
        with pytest.raises(ValueError, match="architecture"):
            FlowJob(graph=graph)

    def test_spec_job_matches_built_graph_job(self):
        arch = minimal_board()
        spec = workload_suite(1, seed=5)[0]
        by_spec = BatchRunner(backend="serial").run(
            [FlowJob(workload=spec, arch=arch,
                     partitioner=GreedyPartitioner())])[0]
        by_graph = BatchRunner(backend="serial").run(
            [FlowJob(graph=spec.build(), arch=arch,
                     partitioner=GreedyPartitioner())])[0]
        assert by_spec.ok and by_graph.ok
        assert by_spec.result.report() == by_graph.result.report()

    def test_spec_job_names_use_label(self):
        arch = minimal_board()
        spec = workload_suite(1, seed=5)[0]
        job = FlowJob(workload=spec, arch=arch,
                      partitioner=GreedyPartitioner())
        assert job.design_name == spec.label
        assert job.name.startswith(spec.label)

    def test_explorer_accepts_spec_entries(self):
        specs = workload_suite(2, seed=9)
        explorer = DesignSpaceExplorer(
            specs, [minimal_board()], [GreedyPartitioner()],
            runner=BatchRunner(backend="serial"))
        result = explorer.explore()
        assert len(result.points) == 2
        assert {p.label.split("@")[0] for p in result.points} == \
            {s.label for s in specs}


class TestDesignSpaceExplorer:
    @pytest.fixture(scope="class")
    def exploration(self):
        graph = four_band_equalizer(words=8)
        explorer = DesignSpaceExplorer(
            graph,
            architectures=[minimal_board(), cool_board()],
            partitioners=[GreedyPartitioner(), MilpPartitioner()],
            deadlines=[None, 10_000],
            runner=BatchRunner(max_workers=4),
        )
        return explorer.explore()

    def test_sweep_covers_cross_product(self, exploration):
        assert len(exploration.points) + len(exploration.failures) == 8

    def test_pareto_front_is_nonempty_subset(self, exploration):
        front = exploration.pareto()
        assert front
        assert set(front) <= set(exploration.feasible_points())
        # no front point may be dominated by any other feasible point
        for p in front:
            assert not any(q.dominates(p)
                           for q in exploration.feasible_points())

    def test_ranked_puts_pareto_first(self, exploration):
        ranked = exploration.ranked()
        assert len(ranked) == len(exploration.points)
        front = set(exploration.pareto())
        prefix = ranked[: len(front)]
        assert set(prefix) == front

    def test_table_renders(self, exploration):
        text = exploration.table()
        assert "makespan" in text
        assert "CLBs" in text
        for point in exploration.pareto():
            assert point.label in text

    def test_deadline_points_respect_deadline(self, exploration):
        for point in exploration.points:
            if point.deadline is not None and point.feasible:
                assert point.makespan <= point.deadline

    def test_infeasible_points_excluded_from_front_and_ranked_last(self):
        graph = four_band_equalizer(words=8)
        exploration = DesignSpaceExplorer(
            graph,
            architectures=[minimal_board()],
            partitioners=[GreedyPartitioner()],
            deadlines=[None, 100],  # 100 ticks is hopeless -> infeasible
            runner=BatchRunner(backend="serial"),
        ).explore()
        infeasible = [p for p in exploration.points if not p.feasible]
        assert infeasible, "scenario needs an infeasible point"
        assert not set(infeasible) & set(exploration.pareto())
        ranked = exploration.ranked()
        assert all(p.feasible for p in ranked[: len(ranked)
                                             - len(infeasible)])
        assert ranked[0].feasible
        # infeasible rows are flagged in the table
        for line in exploration.table().splitlines():
            if "@100" in line:
                assert line.startswith("!")

    def test_same_name_partitioners_get_distinct_labels(self):
        explorer = DesignSpaceExplorer(
            four_band_equalizer(words=8),
            architectures=[minimal_board()],
            partitioners=[GreedyPartitioner(),
                          GreedyPartitioner(max_moves=1)],
        )
        labels = [job.label for job in explorer.jobs()]
        assert len(labels) == len(set(labels))
        assert labels == ["minimal_board/greedy#1", "minimal_board/greedy#2"]

    def test_dominance_is_strict(self):
        a = next(iter(_jobs()), None)  # noqa: F841 - just exercise import
        from repro.flow import DesignPoint
        base = dict(label="x", algorithm="a", arch="b", deadline=None,
                    hw_nodes=1, sw_nodes=1, feasible=True)
        p = DesignPoint(makespan=10, total_clbs=5, memory_words=3, **base)
        q = DesignPoint(makespan=12, total_clbs=5, memory_words=3, **base)
        assert p.dominates(q)
        assert not q.dominates(p)
        assert not p.dominates(p)

    def test_infeasible_outlier_does_not_flatten_feasible_scores(self):
        # regression: `worst` used to be computed over *all* points, so
        # one wildly infeasible outlier flattened the scores ordering
        # the feasible tier
        from repro.flow import DesignPoint, ExplorationResult
        base = dict(algorithm="a", arch="b", deadline=None, hw_nodes=1,
                    sw_nodes=1)
        good = DesignPoint(label="good", makespan=100, total_clbs=10,
                           memory_words=10, feasible=True, **base)
        better = DesignPoint(label="better", makespan=60, total_clbs=14,
                             memory_words=10, feasible=True, **base)
        outlier = DesignPoint(label="outlier", makespan=10 ** 9,
                              total_clbs=10 ** 9, memory_words=10 ** 9,
                              feasible=False, **base)
        result = ExplorationResult(points=[good, better, outlier])
        ranked = result.ranked(front=set())
        assert ranked[-1] is outlier
        # with feasible-set normalization the two feasible points score
        # distinctly: `better` trades 40% makespan for 40% CLBs on very
        # different scales
        feasible = [p for p in ranked if p.feasible]
        worst = [100, 14, 10]
        scores = [sum(p.metrics[i] / worst[i] for i in range(3))
                  for p in feasible]
        assert feasible[0].label == "better"
        assert scores[0] < scores[1]

    def test_all_infeasible_falls_back_to_full_set(self):
        from repro.flow import DesignPoint, ExplorationResult
        base = dict(algorithm="a", arch="b", deadline=None, hw_nodes=1,
                    sw_nodes=1, feasible=False)
        p = DesignPoint(label="p", makespan=10, total_clbs=5,
                        memory_words=3, **base)
        q = DesignPoint(label="q", makespan=20, total_clbs=5,
                        memory_words=3, **base)
        ranked = ExplorationResult(points=[q, p]).ranked()
        assert [r.label for r in ranked] == ["p", "q"]


class TestMultiGraphExplorer:
    @pytest.fixture(scope="class")
    def exploration(self):
        graphs = build_graphs(workload_suite(4, seed=9))
        explorer = DesignSpaceExplorer(
            graphs,
            architectures=[minimal_board()],
            partitioners=[GreedyPartitioner(), MilpPartitioner()],
            runner=BatchRunner(backend="serial"),
        )
        return graphs, explorer, explorer.explore()

    def test_cross_product_covers_graphs(self, exploration):
        graphs, explorer, result = exploration
        assert len(explorer.jobs()) == len(graphs) * 2
        assert len(result.points) + len(result.failures) == len(graphs) * 2

    def test_labels_prefixed_with_graph_name(self, exploration):
        graphs, explorer, _ = exploration
        labels = [job.label for job in explorer.jobs()]
        assert len(set(labels)) == len(labels)
        for graph in graphs:
            assert any(label.startswith(f"{graph.name}@")
                       for label in labels)

    def test_pareto_is_judged_per_graph(self, exploration):
        graphs, _, result = exploration
        front = result.pareto()
        by_graph = result.by_graph()
        assert set(by_graph) == {g.name for g in graphs}
        # a front point may only be dominated by rivals of another graph
        for point in front:
            rivals = [q for q in by_graph[point.graph] if q.feasible]
            assert not any(q.dominates(point) for q in rivals)
        # every graph with a feasible point is represented on the front
        for name, points in by_graph.items():
            if any(p.feasible for p in points):
                assert any(p.graph == name for p in front)

    def test_single_graph_stays_backward_compatible(self):
        graph = four_band_equalizer(words=8)
        explorer = DesignSpaceExplorer(
            graph, architectures=[minimal_board()],
            partitioners=[GreedyPartitioner()],
            runner=BatchRunner(backend="serial"))
        assert explorer.graph is graph
        labels = [job.label for job in explorer.jobs()]
        assert labels == ["minimal_board/greedy"]

    def test_duplicate_graph_names_rejected(self):
        graph = four_band_equalizer(words=8)
        with pytest.raises(ValueError, match="unique"):
            DesignSpaceExplorer([graph, graph],
                                architectures=[minimal_board()],
                                partitioners=[GreedyPartitioner()])

    def test_empty_graphs_rejected(self):
        with pytest.raises(ValueError, match="graph"):
            DesignSpaceExplorer([], architectures=[minimal_board()],
                                partitioners=[GreedyPartitioner()])
