"""Tests for parallel batch execution and design-space exploration."""

import pytest

from repro.apps import four_band_equalizer, fuzzy_controller
from repro.flow import (BatchRunner, DesignSpaceExplorer, FlowJob)
from repro.graph import TaskGraph, execute
from repro.partition import GreedyPartitioner, MilpPartitioner
from repro.platform import cool_board, minimal_board


def _jobs():
    equalizer = four_band_equalizer(words=8)
    return [
        FlowJob(graph=equalizer, arch=minimal_board(),
                partitioner=GreedyPartitioner(), label="eq/greedy"),
        FlowJob(graph=equalizer, arch=minimal_board(),
                partitioner=MilpPartitioner(), label="eq/milp"),
        FlowJob(graph=fuzzy_controller(), arch=cool_board(),
                partitioner=GreedyPartitioner(), label="fuzzy/greedy"),
        FlowJob(graph=equalizer, arch=cool_board(),
                partitioner=GreedyPartitioner(),
                stimuli={"x": [5] * 8}, label="eq/cosim"),
    ]


class TestBatchRunner:
    def test_serial_and_parallel_agree(self):
        serial = BatchRunner(backend="serial").run(_jobs())
        parallel = BatchRunner(max_workers=4).run(_jobs())
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert a.ok and b.ok
            assert a.job.label == b.job.label
            assert a.result.report() == b.result.report()
            assert a.result.vhdl_files == b.result.vhdl_files
            assert a.result.c_files == b.result.c_files

    def test_outcomes_keep_input_order(self):
        outcomes = BatchRunner(max_workers=4).run(_jobs())
        assert [o.job.label for o in outcomes] == \
            ["eq/greedy", "eq/milp", "fuzzy/greedy", "eq/cosim"]
        assert all(o.seconds > 0 for o in outcomes)

    def test_cosim_job_matches_reference(self):
        outcome = BatchRunner(backend="serial").run([_jobs()[3]])[0]
        graph = four_band_equalizer(words=8)
        assert outcome.result.sim_result.outputs["y"] == \
            execute(graph, {"x": [5] * 8})["y"]

    def test_failures_are_isolated(self):
        broken = TaskGraph("broken")
        broken.add_node(name="a", kind="gain",
                        params={"factor": 2, "shift": 1})
        broken.add_node(name="b", kind="gain",
                        params={"factor": 2, "shift": 1})
        broken.add_edge("a", "b")
        broken.add_edge("b", "a")  # cycle -> validation fails
        jobs = [_jobs()[0],
                FlowJob(graph=broken, arch=minimal_board(), label="bad"),
                _jobs()[2]]
        outcomes = BatchRunner(max_workers=3).run(jobs)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert outcomes[1].result is None
        assert "GraphError" in outcomes[1].error

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            BatchRunner(backend="carrier-pigeon")

    def test_job_names(self):
        job = FlowJob(graph=four_band_equalizer(words=8),
                      arch=minimal_board(), partitioner=GreedyPartitioner())
        assert job.name == "equalizer@minimal_board/greedy"
        assert FlowJob(graph=job.graph, arch=job.arch,
                       label="custom").name == "custom"


class TestDesignSpaceExplorer:
    @pytest.fixture(scope="class")
    def exploration(self):
        graph = four_band_equalizer(words=8)
        explorer = DesignSpaceExplorer(
            graph,
            architectures=[minimal_board(), cool_board()],
            partitioners=[GreedyPartitioner(), MilpPartitioner()],
            deadlines=[None, 10_000],
            runner=BatchRunner(max_workers=4),
        )
        return explorer.explore()

    def test_sweep_covers_cross_product(self, exploration):
        assert len(exploration.points) + len(exploration.failures) == 8

    def test_pareto_front_is_nonempty_subset(self, exploration):
        front = exploration.pareto()
        assert front
        assert set(front) <= set(exploration.feasible_points())
        # no front point may be dominated by any other feasible point
        for p in front:
            assert not any(q.dominates(p)
                           for q in exploration.feasible_points())

    def test_ranked_puts_pareto_first(self, exploration):
        ranked = exploration.ranked()
        assert len(ranked) == len(exploration.points)
        front = set(exploration.pareto())
        prefix = ranked[: len(front)]
        assert set(prefix) == front

    def test_table_renders(self, exploration):
        text = exploration.table()
        assert "makespan" in text
        assert "CLBs" in text
        for point in exploration.pareto():
            assert point.label in text

    def test_deadline_points_respect_deadline(self, exploration):
        for point in exploration.points:
            if point.deadline is not None and point.feasible:
                assert point.makespan <= point.deadline

    def test_infeasible_points_excluded_from_front_and_ranked_last(self):
        graph = four_band_equalizer(words=8)
        exploration = DesignSpaceExplorer(
            graph,
            architectures=[minimal_board()],
            partitioners=[GreedyPartitioner()],
            deadlines=[None, 100],  # 100 ticks is hopeless -> infeasible
            runner=BatchRunner(backend="serial"),
        ).explore()
        infeasible = [p for p in exploration.points if not p.feasible]
        assert infeasible, "scenario needs an infeasible point"
        assert not set(infeasible) & set(exploration.pareto())
        ranked = exploration.ranked()
        assert all(p.feasible for p in ranked[: len(ranked)
                                             - len(infeasible)])
        assert ranked[0].feasible
        # infeasible rows are flagged in the table
        for line in exploration.table().splitlines():
            if "@100" in line:
                assert line.startswith("!")

    def test_same_name_partitioners_get_distinct_labels(self):
        explorer = DesignSpaceExplorer(
            four_band_equalizer(words=8),
            architectures=[minimal_board()],
            partitioners=[GreedyPartitioner(),
                          GreedyPartitioner(max_moves=1)],
        )
        labels = [job.label for job in explorer.jobs()]
        assert len(labels) == len(set(labels))
        assert labels == ["minimal_board/greedy#1", "minimal_board/greedy#2"]

    def test_dominance_is_strict(self):
        a = next(iter(_jobs()), None)  # noqa: F841 - just exercise import
        from repro.flow import DesignPoint
        base = dict(label="x", algorithm="a", arch="b", deadline=None,
                    hw_nodes=1, sw_nodes=1, feasible=True)
        p = DesignPoint(makespan=10, total_clbs=5, memory_words=3, **base)
        q = DesignPoint(makespan=12, total_clbs=5, memory_words=3, **base)
        assert p.dominates(q)
        assert not q.dominates(p)
        assert not p.dominates(p)
