"""Co-simulation tests: the synthesized system must compute what the
reference interpreter computes -- the end-to-end correctness statement
of the reproduction."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import four_band_equalizer, fuzzy_controller, random_task_graph
from repro.comm import refine_communication
from repro.controllers import synthesize_system_controller
from repro.estimate import CostModel
from repro.graph import execute, from_mapping, to_signed
from repro.platform import cool_board, minimal_board
from repro.schedule import list_schedule
from repro.sim import CoSimulation, SimError
from repro.stg import build_stg, minimize_stg


def build_system(graph, arch, mapping_overrides=None, stimuli=None,
                 minimize=True, allow_direct=True):
    mapping = {n.name: arch.processor_names[0]
               for n in graph.internal_nodes()}
    mapping.update(mapping_overrides or {})
    partition = from_mapping(graph, mapping, arch.fpga_names,
                             arch.processor_names)
    schedule = list_schedule(partition, CostModel(graph, arch))
    stg = build_stg(schedule)
    if minimize:
        stg, _ = minimize_stg(stg)
    controller = synthesize_system_controller(stg)
    plan = refine_communication(schedule, arch, allow_direct=allow_direct)
    if stimuli is None:
        stimuli = {n.name: [7 * (i + 1) % 100 for i in range(n.words)]
                   for n in graph.inputs()}
    return CoSimulation(graph, partition, schedule, plan, controller,
                        arch, stimuli), stimuli, schedule


class TestEqualizerCosim:
    def test_matches_reference_pure_software(self):
        graph = four_band_equalizer(words=8)
        sim, stimuli, _ = build_system(graph, minimal_board())
        result = sim.run()
        assert result.outputs["y"] == execute(graph, stimuli)["y"]

    def test_matches_reference_mixed_partition(self):
        graph = four_band_equalizer(words=8)
        sim, stimuli, _ = build_system(
            graph, minimal_board(),
            {"band0": "fpga0", "gain0": "fpga0"})
        result = sim.run()
        assert result.outputs["y"] == execute(graph, stimuli)["y"]

    def test_matches_reference_two_fpgas_direct_channels(self):
        graph = four_band_equalizer(words=8)
        sim, stimuli, _ = build_system(
            graph, cool_board(),
            {"band0": "fpga0", "gain0": "fpga1", "band1": "fpga1"})
        result = sim.run()
        assert result.outputs["y"] == execute(graph, stimuli)["y"]

    def test_unminimized_stg_same_result(self):
        graph = four_band_equalizer(words=8)
        sim_full, stimuli, _ = build_system(
            graph, minimal_board(), {"band0": "fpga0"}, minimize=False)
        sim_mini, _, _ = build_system(
            graph, minimal_board(), {"band0": "fpga0"}, stimuli=stimuli)
        assert sim_full.run().outputs == sim_mini.run().outputs

    def test_cycle_count_in_schedule_ballpark(self):
        graph = four_band_equalizer(words=8)
        sim, _, schedule = build_system(graph, minimal_board(),
                                        {"band0": "fpga0"})
        result = sim.run()
        # event-driven execution with controller overhead: same order of
        # magnitude as the static schedule
        assert schedule.makespan // 3 <= result.cycles \
            <= 5 * schedule.makespan

    def test_bus_only_carries_memory_mapped_traffic(self):
        graph = four_band_equalizer(words=8)
        sim, _, _ = build_system(graph, cool_board(),
                                 {"band0": "fpga0", "gain0": "fpga1"})
        result = sim.run()
        assert result.bus_busy_ticks > 0
        assert result.memory_writes > 0

    def test_deadlock_detection(self):
        graph = four_band_equalizer(words=8)
        sim, _, _ = build_system(graph, minimal_board())
        # sabotage: clear the io stimuli so the input unit cannot run
        sim.units["io"].stimuli.clear()
        with pytest.raises(SimError):
            sim.run()


class TestStreamedActivations:
    """CoSimulation.restart / run_stream: the block-processing mode."""

    @staticmethod
    def blocks(graph, count):
        return [{n.name: [(7 * (i + 1) + 13 * block) % 100
                          for i in range(n.words)]
                 for n in graph.inputs()}
                for block in range(count)]

    def test_one_result_per_block_all_matching_reference(self):
        graph = four_band_equalizer(words=8)
        blocks = self.blocks(graph, 3)
        sim, _, _ = build_system(graph, minimal_board(),
                                 {"band0": "fpga0", "gain0": "fpga0"},
                                 stimuli=blocks[0])
        results = sim.run_stream(blocks)
        assert len(results) == len(blocks)
        for block, result in zip(blocks, results):
            assert result.outputs["y"] == execute(graph, block)["y"]
        # cycle counters are cumulative and strictly increasing
        cycles = [r.cycles for r in results]
        assert cycles == sorted(cycles) and len(set(cycles)) == len(cycles)

    def test_streamed_blocks_match_fresh_runs(self):
        graph = four_band_equalizer(words=8)
        blocks = self.blocks(graph, 2)
        sim, _, _ = build_system(graph, minimal_board(), stimuli=blocks[0])
        streamed = sim.run_stream(blocks)
        # activation 2 through the restart path computes exactly what a
        # cold simulation of the same block computes, in the same time
        fresh, _, _ = build_system(graph, minimal_board(),
                                   stimuli=blocks[1])
        fresh_result = fresh.run()
        assert streamed[1].outputs == fresh_result.outputs
        assert streamed[1].cycles - streamed[0].cycles \
            == pytest.approx(fresh_result.cycles, abs=2)

    def test_premature_restart_raises(self):
        graph = four_band_equalizer(words=8)
        blocks = self.blocks(graph, 2)
        sim, _, _ = build_system(graph, minimal_board(), stimuli=blocks[0])
        with pytest.raises(SimError, match="before the activation"):
            sim.restart(blocks[1])
        # a partially-run system is still premature
        for _ in range(5):
            sim.step()
        with pytest.raises(SimError, match="before the activation"):
            sim.restart(blocks[1])


class TestFuzzyCosim:
    @pytest.mark.parametrize("hw_nodes", [
        (),
        ("fz_e", "fz_de"),
        ("rule00", "rule01", "rule02", "agg0a", "agg0"),
        ("defuzz", "scale_u"),
    ])
    def test_control_surface_points_match(self, hw_nodes):
        graph = fuzzy_controller()
        arch = cool_board()
        mapping = {n: ("fpga0" if i % 2 == 0 else "fpga1")
                   for i, n in enumerate(hw_nodes)}
        for err, derr in ((-100, 50), (0, 0), (80, -80)):
            stimuli = {"err": [err & 0xFFFF], "derr": [derr & 0xFFFF]}
            sim, _, _ = build_system(graph, arch, mapping, stimuli=stimuli)
            result = sim.run()
            expected = execute(graph, stimuli)
            assert result.outputs["u"] == expected["u"], \
                f"hw={hw_nodes} err={err} derr={derr}"

    def test_signed_interpretation_sensible(self):
        graph = fuzzy_controller()
        stimuli = {"err": [(-120) & 0xFFFF], "derr": [(-120) & 0xFFFF]}
        sim, _, _ = build_system(graph, cool_board(), {"fz_e": "fpga0"},
                                 stimuli=stimuli)
        result = sim.run()
        assert to_signed(result.outputs["u"][0], 16) < 0


class TestCosimPropertyBased:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=8, max_value=24),
           st.integers(min_value=0, max_value=300),
           st.integers(min_value=0, max_value=300))
    def test_random_systems_match_reference(self, n, gseed, pseed):
        graph = random_task_graph(n, seed=gseed)
        arch = cool_board()
        rng = random.Random(pseed)
        mapping = {node.name: rng.choice(arch.resource_names)
                   for node in graph.internal_nodes()}
        stimuli = {node.name: [rng.randrange(0, 1 << 15)
                               for _ in range(node.words)]
                   for node in graph.inputs()}
        sim, _, _ = build_system(graph, arch, mapping, stimuli=stimuli)
        result = sim.run()
        expected = execute(graph, stimuli)
        for out in graph.outputs():
            assert result.outputs[out.name] == expected[out.name]

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=100))
    def test_stats_consistent(self, seed):
        graph = random_task_graph(12, seed=seed)
        arch = cool_board()
        sim, _, _ = build_system(graph, arch, {})
        result = sim.run()
        assert result.cycles > 0
        assert all(v >= 0 for v in result.unit_busy_ticks.values())
        assert result.memory_reads >= 0
