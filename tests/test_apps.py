"""Unit tests for the application workload generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import (control_surface, four_band_equalizer,
                        fuzzy_controller, fuzzy_spec_text, random_task_graph)
from repro.graph import execute, validate_graph
from repro.spec import elaborate_text


class TestEqualizer:
    def test_structure_matches_figure(self):
        g = four_band_equalizer()
        # in + 4 bands + 4 gains + mix + out = 11 nodes
        assert len(g) == 11
        assert g.predecessors("mix") == ["gain0", "gain1", "gain2", "gain3"]
        assert g.successors("x") == ["band0", "band1", "band2", "band3"]

    def test_is_valid_and_executable(self):
        g = four_band_equalizer(words=8)
        assert validate_graph(g) == []
        values = execute(g, {"x": [100, 0, 0, 0, 0, 0, 0, 0]})
        assert len(values["y"]) == 8

    def test_unity_gains_pass_dc(self):
        g = four_band_equalizer(words=4, gains=(1, 1, 1, 1))
        out = execute(g, {"x": [64, 64, 64, 64]})["y"]
        assert any(v != 0 for v in out)

    def test_band_count_parameter(self):
        g = four_band_equalizer(bands=6)
        # input + 6 bands + 6 gains + mix + output
        assert len(g) == 1 + 6 * 2 + 1 + 1
        assert g.node("mix").params["arity"] == 6

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            four_band_equalizer(bands=0)
        with pytest.raises(ValueError):
            four_band_equalizer(gains=(1, 2))


class TestFuzzyController:
    def test_exactly_31_nodes_as_in_paper(self):
        assert len(fuzzy_controller()) == 31

    def test_is_valid(self):
        assert validate_graph(fuzzy_controller()) == []

    def test_centre_of_surface_is_neutral(self):
        g = fuzzy_controller()
        values = execute(g, {"err": [0], "derr": [0]})
        from repro.graph import to_signed
        assert to_signed(values["u"][0], 16) == 0

    def test_surface_is_monotone_on_diagonal(self):
        from repro.graph import to_signed
        surface = {k: to_signed(v, 16) for k, v in control_surface(64).items()}
        # strongly negative error+delta -> negative action, and vice versa
        assert surface[(-128, -128)] < 0 < surface[(128, 128)]

    def test_surface_symmetry(self):
        from repro.graph import to_signed
        g = fuzzy_controller()

        def u(e, de):
            raw = execute(g, {"err": [e], "derr": [de]})["u"][0]
            return to_signed(raw, 16)

        # rule table is symmetric in (err, derr)
        assert u(64, -32) == u(-32, 64)

    def test_spec_text_roundtrip(self):
        text = fuzzy_spec_text(verbose=False)
        graph = elaborate_text(text)
        assert len(graph) == 31
        ref = execute(fuzzy_controller(), {"err": [40], "derr": [-40]})
        back = execute(graph, {"err": [40], "derr": [-40]})
        assert back["u"] == ref["u"]

    def test_verbose_spec_is_about_900_lines(self):
        lines = fuzzy_spec_text(verbose=True).count("\n")
        assert 800 <= lines <= 1000, f"spec has {lines} lines"


class TestRandomGraphs:
    def test_deterministic_in_seed(self):
        a = random_task_graph(20, seed=7)
        b = random_task_graph(20, seed=7)
        assert a.node_names == b.node_names
        assert [(e.src, e.dst) for e in a.edges] == \
            [(e.src, e.dst) for e in b.edges]

    def test_different_seeds_differ(self):
        a = random_task_graph(20, seed=1)
        b = random_task_graph(20, seed=2)
        assert [(e.src, e.dst) for e in a.edges] != \
            [(e.src, e.dst) for e in b.edges]

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            random_task_graph(4, n_inputs=2, n_outputs=2)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=6, max_value=60),
           st.integers(min_value=0, max_value=10_000))
    def test_generated_graphs_always_valid_and_executable(self, n, seed):
        g = random_task_graph(n, seed=seed)
        assert len(g) == n
        assert validate_graph(g) == []
        stimuli = {node.name: [1] * node.words for node in g.inputs()}
        values = execute(g, stimuli)
        for out in g.outputs():
            assert len(values[out.name]) == out.words
