"""Tests for the synthetic workload generators and suites."""

import pytest

from repro.graph import execute, validate_graph
from repro.workloads import (SCALE_SUITE_SIZES, ChainSpec, DctSpec,
                             EqualizerSpec, ForkJoinSpec, LayeredDagSpec,
                             RandomDagSpec, TreeSpec, WorkloadError,
                             build_graphs, scale_suite, stimuli_for,
                             workload_suite)

ALL_SPECS = [LayeredDagSpec(seed=1), ForkJoinSpec(seed=2), ChainSpec(seed=3),
             TreeSpec(seed=4), EqualizerSpec(seed=5), DctSpec(seed=6),
             RandomDagSpec(seed=7, nodes=24)]


class TestGenerators:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.family)
    def test_generated_graphs_are_valid(self, spec):
        graph = spec.build()
        assert validate_graph(graph) == []
        assert graph.is_acyclic()
        assert graph.internal_nodes()

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.family)
    def test_generated_graphs_are_executable(self, spec):
        graph = spec.build()
        stimuli = stimuli_for(graph, seed=9)
        values = execute(graph, stimuli)
        for node in graph.outputs():
            assert node.name in values
            assert len(values[node.name]) == node.words

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.family)
    def test_build_is_deterministic(self, spec):
        first, second = spec.build(), spec.build()
        assert first.fingerprint() == second.fingerprint()
        assert first.name == second.name
        assert [n.name for n in first.nodes] == [n.name for n in second.nodes]

    def test_spec_fingerprint_is_content_based(self):
        assert LayeredDagSpec(seed=1).fingerprint() == \
            LayeredDagSpec(seed=1).fingerprint()
        assert LayeredDagSpec(seed=1).fingerprint() != \
            LayeredDagSpec(seed=2).fingerprint()
        assert LayeredDagSpec(seed=1).fingerprint() != \
            LayeredDagSpec(seed=1, ccr=2.0).fingerprint()
        # different families never collide even on identical fields
        assert ChainSpec(seed=1).fingerprint() != \
            TreeSpec(seed=1).fingerprint()

    def test_seed_changes_topology(self):
        a = LayeredDagSpec(seed=1).build()
        b = LayeredDagSpec(seed=2).build()
        assert a.fingerprint() != b.fingerprint()

    def test_layered_shape_knobs(self):
        spec = LayeredDagSpec(nodes=14, layers=4, inputs=2, outputs=2,
                              seed=7)
        graph = spec.build()
        assert len(graph.internal_nodes()) == 14
        assert len(graph.inputs()) == 2
        assert len(graph.outputs()) == 2
        # layered construction bounds the depth: input + layers + at
        # most one same-layer sink hop + output
        assert graph.depth() <= 4 + 3
        # every input feeds the dataflow
        for node in graph.inputs():
            assert graph.out_edges(node.name)

    def test_ccr_scales_payload(self):
        small = LayeredDagSpec(nodes=12, seed=3, ccr=0.5).build()
        big = LayeredDagSpec(nodes=12, seed=3, ccr=4.0).build()
        assert big.stats()["payload_bits"] > small.stats()["payload_bits"]

    def test_fork_join_shape(self):
        graph = ForkJoinSpec(branches=3, depth=2, seed=1).build()
        # in + src + 3*2 branch nodes + join + out
        assert len(graph) == 2 + 1 + 6 + 1
        assert len(graph.successors("src")) == 3
        assert len(graph.predecessors("join")) == 3

    def test_chain_shape(self):
        graph = ChainSpec(length=5, seed=1).build()
        assert len(graph.internal_nodes()) == 5
        assert graph.depth() == 7  # input + 5 stages + output

    def test_tree_shape(self):
        graph = TreeSpec(depth=2, arity=3, seed=1).build()
        leaves = [n for n in graph.node_names if n.startswith("leaf")]
        assert len(leaves) == 9

    def test_equalizer_and_dct_families(self):
        eq = EqualizerSpec(bands=3, words=8, taps_per_band=3, seed=1).build()
        assert len([n for n in graph_names(eq) if n.startswith("band")]) == 3
        dct = DctSpec(points=4, coefficients=2, seed=1).build()
        assert dct.name == "dct_p4_c2_s1"
        # renaming kept structure valid and fingerprints distinct per seed
        assert DctSpec(points=4, coefficients=2, seed=2).build() \
            .fingerprint() != dct.fingerprint()

    def test_bad_knobs_rejected(self):
        with pytest.raises(WorkloadError):
            LayeredDagSpec(nodes=2, layers=5).build()
        with pytest.raises(WorkloadError):
            ChainSpec(length=0).build()
        with pytest.raises(WorkloadError):
            TreeSpec(arity=1).build()
        with pytest.raises(WorkloadError):
            ChainSpec(ccr=0.0).build()


def graph_names(graph):
    return graph.node_names


class TestSuite:
    def test_suite_is_deterministic(self):
        a = workload_suite(20, seed=4)
        b = workload_suite(20, seed=4)
        assert [s.fingerprint() for s in a] == [s.fingerprint() for s in b]
        assert [g.fingerprint() for g in build_graphs(a)] == \
            [g.fingerprint() for g in build_graphs(b)]

    def test_suite_seed_matters(self):
        a = workload_suite(10, seed=1)
        b = workload_suite(10, seed=2)
        assert [s.fingerprint() for s in a] != [s.fingerprint() for s in b]

    def test_suite_names_and_fingerprints_unique(self):
        graphs = build_graphs(workload_suite(30, seed=5))
        names = [g.name for g in graphs]
        prints = [g.fingerprint() for g in graphs]
        assert len(set(names)) == len(names)
        assert len(set(prints)) == len(prints)

    def test_suite_cycles_families(self):
        specs = workload_suite(12, seed=0)
        families = [s.family for s in specs]
        assert families[:6] == ["layered", "fork_join", "chain", "tree",
                                "equalizer", "dct"]
        assert families[:6] == families[6:]

    def test_suite_family_filter(self):
        specs = workload_suite(5, seed=0, families=("chain",))
        assert all(s.family == "chain" for s in specs)

    def test_suite_rejects_bad_arguments(self):
        with pytest.raises(WorkloadError):
            workload_suite(0)
        with pytest.raises(WorkloadError):
            workload_suite(3, families=())
        with pytest.raises(WorkloadError):
            workload_suite(3, families=("nope",))

    def test_scale_suite_names_the_bench_scale_designs(self):
        specs = scale_suite()
        assert [s.nodes for s in specs] == list(SCALE_SUITE_SIZES)
        # the seed-equals-size convention reproduces the benches' scale
        # graphs (random_80_80 and friends) bit-for-bit
        graph = scale_suite((80,))[0].build()
        assert graph.name == "random_80_80"
        assert len(list(graph.nodes)) == 80
        assert validate_graph(graph) == []
        with pytest.raises(WorkloadError):
            scale_suite(())
        with pytest.raises(WorkloadError):
            RandomDagSpec(seed=1, nodes=2).build()

    def test_stimuli_are_deterministic_and_shaped(self):
        graph = LayeredDagSpec(seed=8).build()
        a = stimuli_for(graph, seed=2)
        b = stimuli_for(graph, seed=2)
        assert a == b
        assert stimuli_for(graph, seed=3) != a
        for node in graph.inputs():
            vec = a[node.name]
            assert len(vec) == node.words
            assert all(0 <= v < (1 << node.width) for v in vec)
