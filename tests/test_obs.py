"""Tests for the repro.obs tracing/metrics/report subsystem (PR 10)."""

import json
import os
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro.analysis import lint_sources
from repro.obs import (NONDETERMINISTIC_FIELDS, MetricsRegistry, Span, Tracer,
                       activate, canonical_trace, critical_path,
                       current_tracer, dump_trace, load_trace, record,
                       render_report, slowest_spans, span, stage_breakdown,
                       tracing_active, write_trace)


class TestTracer:
    def test_span_ids_sequential_in_open_order(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.span_id == 1
        assert inner.span_id == 2
        assert [s.span_id for s in tracer.spans()] == [1, 2]

    def test_nesting_sets_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["sibling"].parent_id == by_name["outer"].span_id

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            pass
        with tracer.span("detached", parent=root.span_id):
            pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["detached"].parent_id == root.span_id

    def test_attributes_coerced_to_primitives_at_set_time(self):
        tracer = Tracer()
        mutable = [1, 2]
        with tracer.span("s", flag=True, n=3) as handle:
            handle.set("blob", mutable)
            mutable.append(3)  # must not affect the recorded value
        attrs = tracer.spans()[0].attributes
        assert attrs["flag"] is True and attrs["n"] == 3
        assert attrs["blob"] == "[1, 2]"

    def test_record_backdates_start_by_duration(self):
        tracer = Tracer()
        finished = tracer.record("done", kind="job", duration=1.5, ok=True)
        assert finished.duration == 1.5
        assert finished.attributes == {"ok": True}
        # start + duration lands at (roughly) the record() call time
        now = time.perf_counter() - tracer.epoch
        assert abs((finished.start + finished.duration) - now) < 0.5

    def test_record_parents_under_open_span(self):
        tracer = Tracer()
        with tracer.span("sweep") as sweep:
            tracer.record("job", duration=0.1)
        jobs = [s for s in tracer.spans() if s.name == "job"]
        assert jobs[0].parent_id == sweep.span_id

    def test_spans_durations_are_positive(self):
        tracer = Tracer()
        with tracer.span("timed"):
            time.sleep(0.01)
        recorded = tracer.spans()[0]
        assert recorded.duration >= 0.01
        assert recorded.pid == os.getpid()

    def test_per_thread_parent_stacks(self):
        tracer = Tracer()
        seen = {}

        def worker():
            with tracer.span("thread-root") as handle:
                seen["parent"] = handle._parent

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # the other thread's stack is empty: its span is a root, not a
        # child of whatever the main thread had open
        assert seen["parent"] is None


class TestActivation:
    def test_no_active_tracer_by_default(self):
        assert current_tracer() is None
        assert not tracing_active()

    def test_module_span_is_noop_without_tracer(self):
        handle = span("ignored", kind="stage")
        with handle as h:
            h.set("key", "value")  # must not raise
        assert record("ignored") is None

    def test_activate_scopes_the_tracer(self):
        tracer = Tracer()
        with activate(tracer):
            assert current_tracer() is tracer
            assert tracing_active()
            with span("visible", kind="stage"):
                pass
        assert current_tracer() is None
        assert [s.name for s in tracer.spans()] == ["visible"]

    def test_activate_none_disables_tracing_inside_block(self):
        tracer = Tracer()
        with activate(tracer):
            with activate(None):
                assert not tracing_active()
                with span("invisible"):
                    pass
            assert current_tracer() is tracer
        assert len(tracer) == 0

    def test_activation_restored_after_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with activate(tracer):
                raise RuntimeError("boom")
        assert current_tracer() is None


class TestMetrics:
    def test_counter_get_or_create_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("hits") is registry.counter("hits")
        registry.counter("hits").inc()
        registry.counter("hits").inc(3)
        assert registry.counter("hits").value == 4

    def test_counter_rejects_negative_delta(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("hits").inc(-1)

    def test_gauge_and_histogram(self):
        registry = MetricsRegistry()
        registry.gauge("occupancy").set(7)
        registry.gauge("occupancy").add(-2)
        histogram = registry.histogram("latency")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["min"] == 1.0 and summary["max"] == 3.0
        assert summary["mean"] == 2.0
        assert registry.gauge("occupancy").value == 5

    def test_snapshot_is_plain_sorted_dict(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1)
        registry.histogram("h").observe(4.0)
        snapshot = registry.snapshot()
        assert snapshot["a"] == 2 and snapshot["b"] == 1 and snapshot["g"] == 1
        assert snapshot["h"]["count"] == 1
        assert list(snapshot) == sorted(snapshot)
        assert json.dumps(snapshot)  # JSON-serializable throughout


class TestAdoption:
    def _worker_rows(self):
        worker = Tracer()
        with worker.span("job", kind="job", job="eq/greedy"):
            with worker.span("stage", kind="stage"):
                pass
        return worker.compact()

    def test_adopt_remaps_ids_and_reparents_roots(self):
        coordinator = Tracer()
        shard = coordinator.record("shard[0]", kind="shard", duration=0.2)
        adopted = coordinator.adopt(self._worker_rows(),
                                    parent_id=shard.span_id,
                                    start_at=shard.start)
        assert adopted == 2
        by_name = {s.name: s for s in coordinator.spans()}
        job, stage = by_name["job"], by_name["stage"]
        assert job.parent_id == shard.span_id
        assert stage.parent_id == job.span_id
        # fresh coordinator-local ids, preserving the worker's open order
        assert shard.span_id < job.span_id < stage.span_id

    def test_adopt_rebases_worker_starts(self):
        coordinator = Tracer()
        rows = self._worker_rows()
        coordinator.adopt(rows, parent_id=None, start_at=10.0)
        starts = sorted(s.start for s in coordinator.spans())
        assert starts[0] == pytest.approx(10.0)
        assert all(start >= 10.0 for start in starts)

    def test_adopt_preserves_worker_pid_and_attributes(self):
        coordinator = Tracer()
        coordinator.adopt(self._worker_rows())
        job = next(s for s in coordinator.spans() if s.name == "job")
        assert job.pid == os.getpid()  # the worker tracer's pid survives
        assert job.attributes == {"job": "eq/greedy"}

    def test_adopt_nothing(self):
        assert Tracer().adopt(()) == 0


class TestExport:
    def _trace(self):
        tracer = Tracer()
        with tracer.span("flow", kind="flow", graph="eq"):
            with tracer.span("partition", kind="stage", cache="miss"):
                pass
        return tracer

    def test_write_load_roundtrip(self, tmp_path):
        tracer = self._trace()
        path = tmp_path / "trace.jsonl"
        assert write_trace(tracer, path) == 2
        loaded = load_trace(path)
        assert [s["name"] for s in loaded] == ["flow", "partition"]
        assert loaded[1]["parent_id"] == loaded[0]["span_id"]
        assert loaded[1]["attributes"] == {"cache": "miss"}

    def test_dump_trace_is_sorted_jsonl(self):
        text = dump_trace(self._trace().spans())
        for line in text.strip().splitlines():
            keys = list(json.loads(line))
            assert keys == sorted(keys)

    def test_canonical_trace_strips_nondeterministic_fields(self):
        canonical = canonical_trace(self._trace().spans())
        for entry in canonical:
            for field in NONDETERMINISTIC_FIELDS:
                assert field not in entry
        assert canonical[0]["name"] == "flow"
        assert canonical[1]["attributes"] == {"cache": "miss"}

    def test_canonical_trace_equal_across_runs(self):
        assert canonical_trace(self._trace().spans()) == \
            canonical_trace(self._trace().spans())


class TestReport:
    def _spans(self):
        return [
            {"span_id": 1, "parent_id": None, "name": "flow",
             "kind": "flow", "start": 0.0, "duration": 1.0, "pid": 1,
             "attributes": {}},
            {"span_id": 2, "parent_id": 1, "name": "partition",
             "kind": "stage", "start": 0.0, "duration": 0.6, "pid": 1,
             "attributes": {"cache": "miss"}},
            {"span_id": 3, "parent_id": 1, "name": "hls",
             "kind": "stage", "start": 0.6, "duration": 0.3, "pid": 1,
             "attributes": {"cache": "hit"}},
            {"span_id": 4, "parent_id": 2, "name": "store.get",
             "kind": "store", "start": 0.0, "duration": 0.1, "pid": 1,
             "attributes": {}},
        ]

    def test_stage_breakdown_totals_and_self_time(self):
        rows = {(r["kind"], r["name"]): r
                for r in stage_breakdown(self._spans())}
        flow = rows[("flow", "flow")]
        assert flow["total"] == pytest.approx(1.0)
        # self = 1.0 - (0.6 + 0.3) direct stage children
        assert flow["self"] == pytest.approx(0.1)
        partition = rows[("stage", "partition")]
        assert partition["self"] == pytest.approx(0.5)  # minus store.get
        assert partition["cache_hits"] == 0
        assert rows[("stage", "hls")]["cache_hits"] == 1
        # store spans aggregate only under breakdown kinds
        assert ("store", "store.get") not in rows

    def test_critical_path_descends_longest_children(self):
        path = [s["name"] for s in critical_path(self._spans())]
        assert path == ["flow", "partition", "store.get"]

    def test_slowest_spans_ranked(self):
        slowest = slowest_spans(self._spans(), top=2)
        assert [s["name"] for s in slowest] == ["flow", "partition"]

    def test_render_report_sections(self):
        text = render_report(self._spans(), top=3)
        assert "4 spans" in text
        assert "per-stage breakdown" in text
        assert "critical path" in text
        assert "slowest spans" in text
        assert "partition" in text

    def test_report_cli_renders_trace(self, tmp_path):
        tracer = Tracer()
        with tracer.span("flow", kind="flow"):
            pass
        path = tmp_path / "trace.jsonl"
        write_trace(tracer, path)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(root, "src") + os.pathsep \
            + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-m", "repro.obs", "report", str(path)],
            env=env, capture_output=True, text=True)
        assert completed.returncode == 0, completed.stderr
        assert "per-stage breakdown" in completed.stdout
        assert "flow" in completed.stdout


class TestTraceDeterminism:
    """Two runs of the same flow yield identical canonical traces.

    The span ids, parent links, names, kinds and attributes of a traced
    deterministic flow are themselves deterministic -- only
    start/duration/pid (scrubbed by canonical_trace) may differ.
    Exercised across *processes with different siphash salts*, the same
    regime the DET rules and the shard bit-identity benchmarks pin.
    """

    SCRIPT = """
import json
from repro.apps import four_band_equalizer
from repro.flow import CoolFlow
from repro.obs import Tracer, activate, canonical_trace
from repro.platform import minimal_board

tracer = Tracer()
with activate(tracer):
    CoolFlow(minimal_board()).run(four_band_equalizer(words=8))
print(json.dumps(canonical_trace(tracer.spans())))
"""

    def _trace_under_hash_seed(self, seed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = str(seed)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src") + os.pathsep \
            + env.get("PYTHONPATH", "")
        completed = subprocess.run([sys.executable, "-c", self.SCRIPT],
                                   env=env, capture_output=True, text=True)
        assert completed.returncode == 0, completed.stderr
        return json.loads(completed.stdout)

    def test_canonical_trace_identical_across_hash_seeds(self):
        first = self._trace_under_hash_seed(0)
        second = self._trace_under_hash_seed(4242)
        assert first == second
        assert len(first) > 5  # flow + stage + store/cache spans
        names = {entry["name"] for entry in first}
        assert "flow" in names


class TestObs501Rule:
    """OBS501: no tracing API inside fingerprint-reachable code."""

    def _findings(self, path, source):
        result = lint_sources({path: textwrap.dedent(source)})
        return [f for f in result.findings if f.rule == "OBS501"]

    def test_span_in_fingerprint_flagged(self):
        findings = self._findings("repro/flow/bad.py", """
            from ..obs import span as obs_span

            def fingerprint(value):
                with obs_span("hash", kind="stage"):
                    return repr(value)
        """)
        assert len(findings) == 1
        assert "obs.span" in findings[0].message

    def test_whole_package_attribute_call_flagged(self):
        findings = self._findings("repro/flow/bad.py", """
            from repro import obs

            def content_hash(value):
                obs.record("hash", duration=0.1)
                return repr(value)
        """)
        assert len(findings) == 1

    def test_stage_run_body_flagged(self):
        findings = self._findings("repro/flow/bad.py", """
            from ..obs import record as obs_record
            from .pipeline import Stage

            def _stage_partition(ctx):
                obs_record("partition", duration=1.0)
                return {"mapping": {}}

            STAGE = Stage("partition", ("graph",), ("mapping",),
                          _stage_partition)
        """)
        assert len(findings) == 1

    def test_metrics_api_is_exempt(self):
        assert self._findings("repro/flow/ok.py", """
            from ..obs import MetricsRegistry

            def fingerprint(value):
                MetricsRegistry().counter("calls").inc()
                return repr(value)
        """) == []

    def test_obs_package_itself_is_exempt(self):
        assert self._findings("repro/obs/internal.py", """
            from .span import span

            def fingerprint(value):
                with span("x"):
                    return repr(value)
        """) == []

    def test_tracing_outside_fingerprint_reach_is_fine(self):
        assert self._findings("repro/flow/runner.py", """
            from ..obs import span as obs_span

            def run_sweep(jobs):
                with obs_span("sweep", kind="flow"):
                    return list(jobs)
        """) == []
