"""Tests for verified composition: product-of-controllers ≡ minimized STG.

Covers the standalone checker on the bundled apps, the ``verify``
pipeline stage (FlowResult exposure + fingerprint caching) and the
detector's teeth: a tampered controller must be caught.
"""

import pytest

from repro.apps import dct_stage, four_band_equalizer, fuzzy_controller
from repro.controllers import (Fsm, SystemController,
                               synthesize_system_controller,
                               verify_composition)
from repro.estimate import CostModel
from repro.flow import CoolFlow
from repro.graph import from_mapping
from repro.partition import GreedyPartitioner
from repro.platform import cool_board, minimal_board
from repro.schedule import list_schedule
from repro.stg import build_stg, minimize_stg


def implementation(graph, arch, hw_nodes=()):
    mapping = {}
    for node in graph.internal_nodes():
        mapping[node.name] = arch.fpga_names[0] if node.name in hw_nodes \
            else arch.processor_names[0]
    partition = from_mapping(graph, mapping, arch.fpga_names,
                             arch.processor_names)
    schedule = list_schedule(partition, CostModel(graph, arch))
    mini, _ = minimize_stg(build_stg(schedule))
    return graph, mini, synthesize_system_controller(mini)


BUNDLED = [
    (four_band_equalizer(words=8), minimal_board(), ("band0", "gain0")),
    (fuzzy_controller(), cool_board(), ("fz_e", "defuzz")),
    (dct_stage(), minimal_board(), ("s0", "s1")),
]


class TestVerifyComposition:
    @pytest.mark.parametrize("graph,arch,hw", BUNDLED,
                             ids=lambda value: getattr(value, "name", None))
    def test_bundled_apps_equivalent(self, graph, arch, hw):
        graph, mini, controller = implementation(graph, arch, hw)
        check = verify_composition(mini, controller, graph=graph)
        assert check.equivalent, check.mismatches
        assert check.environments == 3
        assert check.starts_checked >= check.environments * \
            len(graph.nodes)
        assert check.composite_configurations > len(controller.fsms)

    def test_unminimized_stg_also_equivalent(self):
        graph = four_band_equalizer(words=8)
        mapping = {n.name: minimal_board().processor_names[0]
                   for n in graph.internal_nodes()}
        partition = from_mapping(graph, mapping,
                                 minimal_board().fpga_names,
                                 minimal_board().processor_names)
        schedule = list_schedule(partition,
                                 CostModel(graph, minimal_board()))
        stg = build_stg(schedule)
        controller = synthesize_system_controller(stg)
        assert verify_composition(stg, controller, graph=graph).equivalent

    def test_tampered_controller_detected(self):
        graph, mini, controller = implementation(*BUNDLED[0])
        resource, sequencer = next((r, f)
                                   for r, f in controller.sequencers.items()
                                   if any(a.startswith("start_")
                                          for a in f.outputs))
        tampered = Fsm(sequencer.name)
        for state in sequencer.states:
            tampered.add_state(state,
                               sequencer.state_outputs.get(state, ()))
        tampered.initial = sequencer.initial
        dropped = False
        for t in sequencer.transitions:
            actions = t.actions
            if not dropped and any(a.startswith("start_") for a in actions):
                actions = tuple(a for a in actions
                                if not a.startswith("start_"))
                dropped = True
            tampered.add_transition(t.src, t.dst, t.conditions, actions)
        assert dropped
        broken = SystemController(
            controller.name, controller.phase_fsm,
            {**controller.sequencers, resource: tampered},
            controller.done_flags)
        check = verify_composition(mini, broken, graph=graph)
        assert not check.equivalent
        assert check.mismatches


class TestVerifyFlowStage:
    @pytest.fixture(scope="class")
    def flow_and_result(self):
        graph = four_band_equalizer(words=8)
        flow = CoolFlow(minimal_board(), partitioner=GreedyPartitioner())
        return flow, graph, flow.run(graph)

    def test_composition_check_exposed(self, flow_and_result):
        _, _, result = flow_and_result
        assert result.composition_check is not None
        assert result.composition_check.equivalent
        assert result.stage_runs.get("verify") == 1
        assert "verify" in result.stage_seconds

    def test_report_mentions_verification(self, flow_and_result):
        _, _, result = flow_and_result
        assert "verified composition" in result.report()

    def test_stage_is_fingerprint_cached(self, flow_and_result):
        flow, graph, _ = flow_and_result
        warm = flow.run(graph)
        assert warm.composition_check is not None
        assert warm.composition_check.equivalent
        assert warm.stage_runs.get("verify", 0) == 0

    def test_opt_out(self):
        graph = four_band_equalizer(words=8)
        flow = CoolFlow(minimal_board(), partitioner=GreedyPartitioner(),
                        verify_composition=False)
        result = flow.run(graph)
        assert result.composition_check is None
        assert result.stage_runs.get("verify", 0) == 0
