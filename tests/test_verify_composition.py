"""Tests for verified composition: product-of-controllers ≡ minimized STG.

Covers the tiered checker on the bundled apps (the unbounded symbolic
fixpoint tier as default with the explicit bisimulation tier as its
oracle, environment sampling as recorded fallback), the ``verify``
pipeline stage (FlowResult exposure + fingerprint caching + tier
configuration) and the detector's teeth: a tampered controller must be
caught by *every* tier, with a concrete distinguishing trace from the
symbolic one.
"""

import types

import pytest

from repro.apps import dct_stage, four_band_equalizer, fuzzy_controller
from repro.automata import AutomataError
from repro.controllers import (Fsm, SystemController,
                               synthesize_system_controller,
                               verify_composition)
from repro.controllers.verify import _dependency_violations, _multiset_diff
from repro.estimate import CostModel
from repro.flow import CoolFlow
from repro.graph import from_mapping
from repro.partition import GreedyPartitioner
from repro.platform import cool_board, minimal_board
from repro.schedule import list_schedule
from repro.stg import (StateKind, Stg, StgState, StgTransition, build_stg,
                       minimize_stg)


def implementation(graph, arch, hw_nodes=()):
    mapping = {}
    for node in graph.internal_nodes():
        mapping[node.name] = arch.fpga_names[0] if node.name in hw_nodes \
            else arch.processor_names[0]
    partition = from_mapping(graph, mapping, arch.fpga_names,
                             arch.processor_names)
    schedule = list_schedule(partition, CostModel(graph, arch))
    mini, _ = minimize_stg(build_stg(schedule))
    return graph, mini, synthesize_system_controller(mini)


def tamper(controller):
    """Drop the first ``start_*`` action of one sequencer."""
    resource, sequencer = next((r, f)
                               for r, f in controller.sequencers.items()
                               if any(a.startswith("start_")
                                      for a in f.outputs))
    tampered = Fsm(sequencer.name)
    for state in sequencer.states:
        tampered.add_state(state,
                           sequencer.state_outputs.get(state, ()))
    tampered.initial = sequencer.initial
    dropped = False
    for t in sequencer.transitions:
        actions = t.actions
        if not dropped and any(a.startswith("start_") for a in actions):
            actions = tuple(a for a in actions
                            if not a.startswith("start_"))
            dropped = True
        tampered.add_transition(t.src, t.dst, t.conditions, actions)
    assert dropped
    return SystemController(
        controller.name, controller.phase_fsm,
        {**controller.sequencers, resource: tampered},
        controller.done_flags)


BUNDLED = [
    (four_band_equalizer(words=8), minimal_board(), ("band0", "gain0")),
    (fuzzy_controller(), cool_board(), ("fz_e", "defuzz")),
    (dct_stage(), minimal_board(), ("s0", "s1")),
]


class TestSymbolicTier:
    @pytest.mark.parametrize("graph,arch,hw", BUNDLED,
                             ids=lambda value: getattr(value, "name", None))
    def test_bundled_apps_proved_equivalent(self, graph, arch, hw):
        graph, mini, controller = implementation(graph, arch, hw)
        check = verify_composition(mini, controller, graph=graph)
        assert check.equivalent, check.mismatches
        assert check.tier == "symbolic"
        assert check.fallback_reason is None
        # oracle-sized designs are re-proved by the explicit tier and
        # the relational BDD image iteration; its stats must surface
        assert check.oracle == "agrees"
        assert check.image_iterations > 0
        assert check.bdd_nodes > 0
        assert check.bdd_unique_table > 0
        assert 0.0 < check.bdd_ite_hit_rate <= 1.0
        assert check.pairs_checked > 0
        # one projection per processing unit plus one per memory command
        assert check.projections_checked > len(controller.sequencers)
        assert check.product_states > len(controller.phase_fsm.states)
        assert check.reference_states > len(controller.phase_fsm.states)
        assert check.composite_configurations == check.product_states
        assert check.starts_checked >= len(graph.nodes)

    def test_restart_loop_is_part_of_the_product(self):
        from repro.controllers.verify import (controller_product_automaton,
                                              stg_step_automaton)
        _, mini, controller = implementation(*BUNDLED[0])
        for automaton in (controller_product_automaton(controller, 4000),
                          stg_step_automaton(mini, 4000)):
            restart = automaton.symbols.id_of("restart")
            assert restart is not None, automaton.name
            loops = [t for t in automaton.transitions
                     if restart in t.conditions]
            assert loops, f"{automaton.name} has no restart edge"

    def test_tampered_controller_fails_every_tier(self):
        graph, mini, controller = implementation(*BUNDLED[0])
        tampered = tamper(controller)
        # symbolic tier (forced: no oracle assist) with a concrete
        # shortest distinguishing trace in ?letter/!action form
        check = verify_composition(mini, tampered, graph=graph,
                                   strategy="symbolic")
        assert check.tier == "symbolic"
        assert not check.equivalent
        trace_mismatches = [m for m in check.mismatches
                            if "not weakly trace-equivalent" in m]
        assert trace_mismatches
        assert any("trace " in m and " is possible only in " in m
                   for m in trace_mismatches)
        assert any("!start_" in m for m in trace_mismatches)
        # explicit bisimulation tier independently
        check = verify_composition(mini, tampered, graph=graph,
                                   strategy="exhaustive")
        assert check.tier == "bisimulation"
        assert not check.equivalent
        assert any("not weakly bisimilar" in m for m in check.mismatches)
        # and the default auto tier's oracle agrees both are inequivalent
        check = verify_composition(mini, tampered, graph=graph)
        assert check.tier == "symbolic"
        assert not check.equivalent
        assert check.oracle == "agrees"

    def test_unminimized_stg_also_equivalent(self):
        graph = four_band_equalizer(words=8)
        mapping = {n.name: minimal_board().processor_names[0]
                   for n in graph.internal_nodes()}
        partition = from_mapping(graph, mapping,
                                 minimal_board().fpga_names,
                                 minimal_board().processor_names)
        schedule = list_schedule(partition,
                                 CostModel(graph, minimal_board()))
        stg = build_stg(schedule)
        controller = synthesize_system_controller(stg)
        check = verify_composition(stg, controller, graph=graph)
        assert check.equivalent, check.mismatches
        assert check.tier == "symbolic"

    def test_max_states_no_longer_limits_the_default_tier(self):
        # the symbolic tier is unbounded: a max_states far below the
        # reachable product must still produce a symbolic proof (the
        # explicit oracle silently sits out -- it cannot materialize)
        graph, mini, controller = implementation(*BUNDLED[0])
        check = verify_composition(mini, controller, graph=graph,
                                   max_states=5)
        assert check.tier == "symbolic"
        assert check.equivalent, check.mismatches
        assert check.fallback_reason is None
        assert check.oracle is None

    def test_fixpoint_blowup_falls_back_with_reason(self, monkeypatch):
        # the sampled fallback survives for symbolic-tier failures: a
        # violated determinacy contract (simulated by shrinking the
        # pair-fixpoint safety valve) must land on the sampled tier
        # with the reason recorded
        import repro.automata.symbolic as symbolic
        graph, mini, controller = implementation(*BUNDLED[0])
        monkeypatch.setattr(symbolic, "MAX_PAIR_FIXPOINT", 1)
        check = verify_composition(mini, controller, graph=graph)
        assert check.tier == "sampled"
        assert check.equivalent
        assert "pair fixpoint exceeds" in check.fallback_reason

    def test_strict_strategies_refuse_to_fall_back(self, monkeypatch):
        import repro.automata.symbolic as symbolic
        _, mini, controller = implementation(*BUNDLED[0])
        with pytest.raises(AutomataError):
            verify_composition(mini, controller, max_states=5,
                               strategy="exhaustive")
        monkeypatch.setattr(symbolic, "MAX_PAIR_FIXPOINT", 1)
        with pytest.raises(AutomataError):
            verify_composition(mini, controller, strategy="symbolic")

    def test_mirrored_deadlock_detected(self):
        # an STG stuck behind an unsatisfiable guard, faithfully
        # mirrored by its controller: every projection is bisimilar
        # (both sides deadlock identically), so completion must be
        # checked structurally -- no restart-admissible configuration
        stg = Stg("deadlock")
        stg.add_state(StgState("R", StateKind.GLOBAL_RESET))
        stg.add_state(StgState("X", StateKind.GLOBAL_EXEC))
        stg.add_state(StgState("D", StateKind.GLOBAL_DONE))
        stg.add_state(StgState("r_sw", StateKind.RESET, resource="sw"))
        stg.add_state(StgState("w_a", StateKind.WAIT, node="a",
                               resource="sw"))
        stg.add_state(StgState("x_a", StateKind.EXEC, node="a",
                               resource="sw"))
        stg.add_state(StgState("d_a", StateKind.DONE, node="a",
                               resource="sw"))
        stg.initial = "R"
        stg.add_transition(StgTransition("R", "r_sw",
                                         actions=("reset_sw",)))
        stg.add_transition(StgTransition("r_sw", "X"))
        stg.add_transition(StgTransition("X", "w_a"))
        # 'ghost' never starts, so done_ghost is never admissible
        stg.add_transition(StgTransition("w_a", "x_a",
                                         conditions=("done_ghost",),
                                         actions=("start_a",)))
        stg.add_transition(StgTransition("x_a", "d_a",
                                         conditions=("done_a",)))
        stg.add_transition(StgTransition("d_a", "D"))
        controller = synthesize_system_controller(stg)
        check = verify_composition(stg, controller)
        assert check.tier == "symbolic"
        assert not check.equivalent
        assert sum("never completes an activation" in m
                   for m in check.mismatches) == 2
        # the explicit tier sees the same structural deadlock
        explicit = verify_composition(stg, controller,
                                      strategy="exhaustive")
        assert not explicit.equivalent
        assert sum("never completes an activation" in m
                   for m in explicit.mismatches) == 2

    def test_schedule_sanity_catches_a_mirrored_dependency_bug(self):
        # bisimulation alone cannot see a schedule bug both sides
        # mirror faithfully: with a (fabricated) reversed dependency
        # the STG's own trace must fail the task-graph sanity check
        # even though controllers ≡ STG holds
        graph, mini, controller = implementation(*BUNDLED[0])
        reversed_edge = types.SimpleNamespace(
            edges=[types.SimpleNamespace(src="gain0", dst="band0")])
        check = verify_composition(mini, controller, graph=reversed_edge)
        assert check.tier == "symbolic"
        assert not check.equivalent
        assert any("schedule sanity" in m for m in check.mismatches)

    def test_bad_arguments_rejected(self):
        _, mini, controller = implementation(*BUNDLED[0])
        with pytest.raises(ValueError):
            verify_composition(mini, controller, strategy="guess")
        with pytest.raises(ValueError):
            verify_composition(mini, controller, activations=0)


class TestSampledTier:
    def test_streams_activations_through_restart(self):
        graph, mini, controller = implementation(*BUNDLED[0])
        check = verify_composition(mini, controller, graph=graph,
                                   strategy="sampled", activations=3)
        assert check.equivalent, check.mismatches
        assert check.tier == "sampled"
        assert check.environments == 3
        assert check.activations == 3
        # every activation of every environment checks every start
        assert check.starts_checked >= 3 * 3 * len(graph.nodes)
        assert check.fallback_reason is None

    def test_tampered_controller_detected(self):
        graph, mini, controller = implementation(*BUNDLED[0])
        check = verify_composition(mini, tamper(controller), graph=graph,
                                   strategy="sampled")
        assert not check.equivalent
        assert check.mismatches

    def test_restart_cycle_emissions_are_not_a_blind_spot(self):
        # a command emitted during the restart cycle itself must land
        # in the next activation's trace, not vanish between traces
        graph, mini, controller = implementation(*BUNDLED[0])
        phase = controller.phase_fsm
        noisy = Fsm(phase.name)
        for state in phase.states:
            noisy.add_state(state, phase.state_outputs.get(state, ()))
        noisy.initial = phase.initial
        for t in phase.transitions:
            actions = t.actions
            if "restart" in t.conditions:
                actions = actions + ("write_spurious",)
            noisy.add_transition(t.src, t.dst, t.conditions, actions)
        broken = SystemController(controller.name, noisy,
                                  controller.sequencers,
                                  controller.done_flags)
        check = verify_composition(mini, broken, graph=graph,
                                   strategy="sampled")
        assert not check.equivalent
        assert any("write_spurious" in m for m in check.mismatches)

    def test_summary_round_trips_tier_fields(self):
        graph, mini, controller = implementation(*BUNDLED[0])
        summary = verify_composition(mini, controller, graph=graph,
                                     strategy="sampled").summary()
        assert summary["tier"] == "sampled"
        assert summary["activations"] == 2
        assert summary["fallback_reason"] is None


class TestTraceCheckHelpers:
    def test_multiset_diff_sees_multiplicities(self):
        # equal action *sets*, different multiplicities: the old set
        # symmetric difference reported nothing here
        reference = ["start_a", "start_a", "write_e"]
        candidate = ["start_a", "write_e", "write_e"]
        message = _multiset_diff(reference, candidate)
        assert "'write_e': 1" in message
        assert "'start_a': 1" in message
        assert "surplus" in message and "missing" in message

    def test_dependency_anchor_is_first_occurrence(self):
        edges = [types.SimpleNamespace(src="a", dst="b")]
        # replayed start of 'b': the *first* one ran before its
        # producer -- a last-occurrence anchor would miss it
        actions = ["start_b", "start_a", "start_b"]
        assert _dependency_violations(actions, edges) == [("a", "b")]
        assert _dependency_violations(
            ["start_a", "start_b", "start_b"], edges) == []

    def test_dependency_missing_producer_flagged(self):
        edges = [types.SimpleNamespace(src="a", dst="b")]
        assert _dependency_violations(["start_b"], edges) == [("a", "b")]
        assert _dependency_violations([], edges) == []


class TestVerifyFlowStage:
    @pytest.fixture(scope="class")
    def flow_and_result(self):
        graph = four_band_equalizer(words=8)
        flow = CoolFlow(minimal_board(), partitioner=GreedyPartitioner())
        return flow, graph, flow.run(graph)

    def test_composition_check_exposed(self, flow_and_result):
        _, _, result = flow_and_result
        assert result.composition_check is not None
        assert result.composition_check.equivalent
        assert result.composition_check.tier == "symbolic"
        assert result.stage_runs.get("verify") == 1
        assert "verify" in result.stage_seconds

    def test_report_mentions_verification(self, flow_and_result):
        _, _, result = flow_and_result
        assert "verified composition" in result.report()
        assert "symbolic fixpoint" in result.report()
        assert "BDD nodes" in result.report()
        assert "explicit oracle agrees" in result.report()

    def test_stage_is_fingerprint_cached(self, flow_and_result):
        flow, graph, _ = flow_and_result
        warm = flow.run(graph)
        assert warm.composition_check is not None
        assert warm.composition_check.equivalent
        assert warm.stage_runs.get("verify", 0) == 0

    def test_tier_options_are_part_of_the_stage_key(self, flow_and_result):
        flow, graph, _ = flow_and_result
        sampled_flow = CoolFlow(minimal_board(),
                                partitioner=GreedyPartitioner(),
                                stage_cache=flow.stage_cache,
                                verify_strategy="sampled")
        result = sampled_flow.run(graph)
        # same upstream artifacts, different verify options: only the
        # verify stage re-runs and the sampled tier produces the verdict
        assert result.stage_runs.get("verify") == 1
        assert result.stage_runs.get("controllers", 0) == 0
        assert result.composition_check.tier == "sampled"
        assert "sampled" in result.report()

    def test_opt_out(self):
        graph = four_band_equalizer(words=8)
        flow = CoolFlow(minimal_board(), partitioner=GreedyPartitioner(),
                        verify_composition=False)
        result = flow.run(graph)
        assert result.composition_check is None
        assert result.stage_runs.get("verify", 0) == 0


class TestObservableClassDeterminism:
    """Pin: the symbolic verdict must not depend on hash order.

    ``_observable_classes`` seeds its per-unit classes from the distinct
    resource names, and the greedy packing of memory commands runs over
    the resulting class list -- if unordered-set iteration ever escaped
    into that list (the site at verify.py previously iterated
    ``set(resource_of.values())`` unsorted), two hosts could check and
    label different projections.  Downstream, the symbolic tier's
    interleaved variable order, pair-fixpoint exploration and BDD
    construction must be equally hash-independent: the pinned evidence
    is the full stats row of a symbolic run (pairs explored per class,
    engine node/unique-table counts, reachable-set BDD sizes).
    Computing all of it under two different ``PYTHONHASHSEED`` values
    must give identical results.
    """

    SCRIPT = """
import json
from repro.apps import four_band_equalizer
from repro.controllers import synthesize_system_controller
from repro.controllers.verify import (_node_resources, _observable_classes,
                                      _system_alphabet,
                                      controller_step_system,
                                      stg_step_system)
from repro.automata import symbolic_trace_equivalence
from repro.estimate import CostModel
from repro.graph import from_mapping
from repro.platform import minimal_board
from repro.schedule import list_schedule
from repro.stg import build_stg, minimize_stg

graph, arch = four_band_equalizer(words=8), minimal_board()
mapping = {node.name: arch.fpga_names[0]
           if node.name in ("band0", "gain0") else arch.processor_names[0]
           for node in graph.internal_nodes()}
partition = from_mapping(graph, mapping, arch.fpga_names,
                         arch.processor_names)
schedule = list_schedule(partition, CostModel(graph, arch))
mini, _ = minimize_stg(build_stg(schedule))
controller = synthesize_system_controller(mini)
product = controller_step_system(controller)
reference = stg_step_system(mini)
reference.expand_all()
actions, bursts = _system_alphabet((reference, product))
classes = _observable_classes(actions, bursts, _node_resources(controller))
result = symbolic_trace_equivalence(reference, product, classes,
                                    relational_check=True)
print(json.dumps({
    "classes": [[label, sorted(members)] for label, members in classes],
    "equivalent": result.equivalent,
    "pairs": [[v.label, v.pairs] for v in result.verdicts],
    "states": [result.left_states, result.right_states],
    "image_iterations": result.image_iterations,
    "bdd": {key: value for key, value in sorted(result.bdd_stats.items())
            if key != "ite_hit_rate"},
    "ite_hit_rate": round(result.bdd_stats["ite_hit_rate"], 9),
}))
"""

    def _classes_under_hash_seed(self, seed):
        import os
        import subprocess
        import sys
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = str(seed)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src") + os.pathsep \
            + env.get("PYTHONPATH", "")
        completed = subprocess.run([sys.executable, "-c", self.SCRIPT],
                                   env=env, capture_output=True, text=True)
        assert completed.returncode == 0, completed.stderr
        import json
        return json.loads(completed.stdout)

    def test_symbolic_run_identical_across_hash_seeds(self):
        first = self._classes_under_hash_seed(0)
        second = self._classes_under_hash_seed(4242)
        assert first == second
        assert first["equivalent"]
        assert len(first["classes"]) > 1  # the partition is non-trivial
        assert first["image_iterations"] > 0
        assert first["bdd"]["nodes"] > 0
