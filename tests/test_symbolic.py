"""Unit tests for the symbolic guard engine (BDDs + two-level covers)."""

import itertools
import random

import pytest

from repro.symbolic import (FALSE, TRUE, BddEngine, BddError, cover_literals,
                            cover_node, expand_cubes, guard_from_cover,
                            irredundant_cover, isop, minimal_cover,
                            plain_cube, render_cover)


def minterm_node(engine, row):
    """The minterm BDD of one 0/1 assignment row."""
    return engine.cube(tuple((var, bool(bit)) for var, bit in enumerate(row)))


def rows_node(engine, rows):
    return engine.disj(minterm_node(engine, row) for row in rows)


def random_function(engine, rng, nvars, density=0.4):
    rows = [row for row in itertools.product((0, 1), repeat=nvars)
            if rng.random() < density]
    return rows, rows_node(engine, rows)


class TestEngine:
    def test_canonicity_independent_of_construction_order(self):
        e = BddEngine()
        a, b, c = e.var(0), e.var(1), e.var(2)
        left = e.and_(a, e.or_(b, c))
        right = e.or_(e.and_(c, a), e.and_(a, b))
        assert left == right
        assert e.xor(left, right) == FALSE

    def test_terminal_rules(self):
        e = BddEngine()
        a = e.var(0)
        assert e.and_(a, TRUE) == a
        assert e.and_(a, FALSE) == FALSE
        assert e.or_(a, FALSE) == a
        assert e.or_(a, TRUE) == TRUE
        assert e.not_(e.not_(a)) == a
        assert e.is_tautology(e.or_(a, e.not_(a)))
        assert e.is_false(e.and_(a, e.not_(a)))

    def test_ite_matches_truth_table(self):
        e = BddEngine()
        rng = random.Random(7)
        for _ in range(50):
            _, f = random_function(e, rng, 3)
            _, g = random_function(e, rng, 3)
            _, h = random_function(e, rng, 3)
            node = e.ite(f, g, h)
            for row in itertools.product((0, 1), repeat=3):
                truth = {i for i, bit in enumerate(row) if bit}
                want = e.eval(g, truth) if e.eval(f, truth) \
                    else e.eval(h, truth)
                assert e.eval(node, truth) == want

    def test_cofactor(self):
        e = BddEngine()
        f = e.and_(e.var(0), e.or_(e.var(1), e.var(2)))
        assert e.cofactor(f, 0, True) == e.or_(e.var(1), e.var(2))
        assert e.cofactor(f, 0, False) == FALSE
        assert e.cofactor(f, 5, True) == f  # absent variable: unchanged

    def test_implication_and_equivalence(self):
        e = BddEngine()
        a, b = e.var(0), e.var(1)
        assert e.implies(e.and_(a, b), a)
        assert not e.implies(a, e.and_(a, b))
        assert e.implies(FALSE, a) and e.implies(a, TRUE)
        assert e.equivalent(e.or_(a, b), e.or_(b, a))

    def test_eval_and_support(self):
        e = BddEngine()
        f = e.or_(e.and_(e.var(0), e.nvar(1)), e.var(3))
        assert e.eval(f, {0}) and not e.eval(f, {0, 1})
        assert e.eval(f, {3, 1})
        assert e.support(f) == frozenset({0, 1, 3})
        assert e.support(TRUE) == frozenset()

    def test_fingerprint_stable_across_engines(self):
        names = {0: "a", 1: "b", 2: "c"}
        e1, e2 = BddEngine(), BddEngine()
        f1 = e1.and_(e1.var(0), e1.or_(e1.var(1), e1.var(2)))
        f2 = e2.or_(e2.and_(e2.var(0), e2.var(2)),
                    e2.and_(e2.var(1), e2.var(0)))
        assert e1.fingerprint(f1, names.get) == e2.fingerprint(f2, names.get)
        assert e1.fingerprint(f1, names.get) != e1.fingerprint(
            e1.var(0), names.get)

    def test_foreign_node_rejected(self):
        e = BddEngine()
        with pytest.raises(BddError):
            e.eval(99, set())
        with pytest.raises(BddError):
            e.var(-1)


class TestCovers:
    def test_isop_stays_in_interval(self):
        rng = random.Random(11)
        for _ in range(150):
            e = BddEngine()
            nvars = rng.randint(1, 4)
            on_rows, onset = random_function(e, rng, nvars)
            dc_rows, dc = random_function(e, rng, nvars, density=0.2)
            upper = e.or_(onset, dc)
            cubes, node = isop(e, onset, upper)
            assert e.implies(onset, node)
            assert e.implies(node, upper)
            assert cover_node(e, cubes) == node

    def test_isop_rejects_empty_interval(self):
        e = BddEngine()
        with pytest.raises(ValueError):
            isop(e, TRUE, e.var(0))

    def test_expand_drops_literals_inside_upper(self):
        e = BddEngine()
        a, b = e.var(0), e.var(1)
        # cube a&b with upper = a: b is free
        cubes = expand_cubes(e, [((0, True), (1, True))], a)
        assert cubes == (((0, True),),)

    def test_irredundant_removes_covered_cubes(self):
        e = BddEngine()
        lower = e.var(0)
        cubes = irredundant_cover(
            e, [((0, True),), ((0, True), (1, True))], lower)
        assert cubes == (((0, True),),)

    def test_minimal_cover_agrees_on_care_rows(self):
        rng = random.Random(23)
        for _ in range(150):
            e = BddEngine()
            nvars = rng.randint(1, 4)
            on_rows, onset = random_function(e, rng, nvars)
            dc_rows, dc = random_function(e, rng, nvars, density=0.25)
            dc = e.diff(dc, onset)
            cover = minimal_cover(e, onset, dc)
            node = cover_node(e, cover)
            for row in itertools.product((0, 1), repeat=nvars):
                truth = {i for i, bit in enumerate(row) if bit}
                if e.eval(dc, truth):
                    continue  # don't-care row: anything goes
                assert e.eval(node, truth) == e.eval(onset, truth)

    def test_minimal_cover_exploits_dont_cares(self):
        e = BddEngine()
        # onset a&b, don't care everything with b false -> cover is just a
        onset = e.and_(e.var(0), e.var(1))
        dc = e.diff(e.var(0), onset)
        cover = minimal_cover(e, onset, dc)
        assert cover == (((0, True),),)
        assert cover_literals(cover) == 1

    def test_render_cover(self):
        names = {0: "a", 1: "b"}.get
        assert render_cover([((0, True), (1, False))], names) == "a&!b"
        assert render_cover([], names) == "0"
        assert render_cover([()], names) == "1"


class TestGuard:
    def test_plain_cube_detection(self):
        assert plain_cube([((0, True), (2, True))]) == (0, 2)
        assert plain_cube([()]) == ()
        assert plain_cube([((0, False),)]) is None
        assert plain_cube([((0, True),), ((1, True),)]) is None

    def test_guard_eval_and_implication(self):
        e = BddEngine()
        g1 = guard_from_cover(e, [((0, True), (1, False))])
        g2 = guard_from_cover(e, [((0, True),)])
        assert g1.eval({0}) and not g1.eval({0, 1})
        assert g1.implies(g2) and not g2.implies(g1)
        assert g1.support() == frozenset({0, 1})

    def test_guard_fingerprint_via_names(self):
        e = BddEngine()
        g = guard_from_cover(e, [((0, True),), ((1, True),)])
        names = {0: "x", 1: "y"}
        e2 = BddEngine()
        h = guard_from_cover(e2, [((1, True),), ((0, True),)])
        assert g.fingerprint(names.get) == h.fingerprint(names.get)
