"""Invariant tests: STG minimization safety and memory-cell lifetimes.

Three properties the flow relies on but never re-checks at runtime:

* minimization output always passes ``Stg.validate()`` (for the
  generated workload families too, not just the curated apps);
* ``_rebuild`` can never leave ``initial`` pointing at a contracted
  state -- the entry state survives every reduction;
* ``MemoryCell.overlaps_in_time`` boundary semantics (a write tick equal
  to a read-end tick means *disjoint* lifetimes) agree with what the
  ``StgExecutor``-driven co-simulation actually does to shared cells.
"""

import pytest

from repro.flow import CoolFlow
from repro.graph import execute
from repro.partition import GreedyPartitioner
from repro.platform import minimal_board
from repro.stg import (StateKind, Stg, StgError, StgExecutor, StgState,
                       StgTransition, minimize_stg)
from repro.stg.memory import MemoryCell
from repro.stg.minimize import _rebuild
from repro.workloads import (ChainSpec, ForkJoinSpec, LayeredDagSpec,
                             stimuli_for)

WORKLOAD_SPECS = [ChainSpec(length=5, seed=11),
                  ForkJoinSpec(branches=3, depth=1, seed=12),
                  LayeredDagSpec(nodes=8, layers=3, seed=13)]


def _flow_result(spec, stimuli=None):
    graph = spec.build()
    flow = CoolFlow(minimal_board(), partitioner=GreedyPartitioner())
    return graph, flow.run(graph, stimuli=stimuli)


class TestMinimizationInvariants:
    @pytest.mark.parametrize("spec", WORKLOAD_SPECS,
                             ids=lambda s: s.family)
    def test_minimized_stg_validates(self, spec):
        _, result = _flow_result(spec)
        assert result.stg_full.validate() == []
        assert result.stg.validate() == []
        assert result.minimization.states_after == len(result.stg)

    @pytest.mark.parametrize("spec", WORKLOAD_SPECS,
                             ids=lambda s: s.family)
    def test_initial_state_survives(self, spec):
        _, result = _flow_result(spec)
        assert result.stg.initial is not None
        assert result.stg.initial in result.stg
        # and re-minimizing an already minimal graph is stable
        again, report = minimize_stg(result.stg)
        assert again.initial == result.stg.initial
        assert again.validate() == []

    def test_initial_wait_state_never_contracted(self):
        # pathological but legal: the entry state is an unguarded WAIT,
        # exactly the shape wait-contraction folds away.  The entry
        # state must survive or `initial` would dangle.
        stg = Stg("entry-wait")
        stg.add_state(StgState("w0", StateKind.WAIT, node="n0",
                               resource="cpu"))
        stg.add_state(StgState("x0", StateKind.EXEC, node="n0",
                               resource="cpu"))
        stg.add_state(StgState("D", StateKind.GLOBAL_DONE))
        stg.initial = "w0"
        stg.add_transition(StgTransition("w0", "x0", actions=("start_n0",)))
        stg.add_transition(StgTransition("x0", "D", conditions=("done_n0",)))
        mini, report = minimize_stg(stg)
        assert mini.initial == "w0"
        assert "w0" in mini
        assert mini.validate() == []
        # behaviour is intact: executing still emits the start action
        ex = StgExecutor(mini)
        ex.step()
        ex.step({"done_n0"})
        assert ex.done
        assert "start_n0" in [a for f in ex.action_trace() for a in f]

    def test_initial_done_state_never_contracted(self):
        stg = Stg("entry-done")
        stg.add_state(StgState("d0", StateKind.DONE, node="n0",
                               resource="cpu"))
        stg.add_state(StgState("D", StateKind.GLOBAL_DONE))
        stg.initial = "d0"
        stg.add_transition(StgTransition("d0", "D", actions=("ack",)))
        mini, _ = minimize_stg(stg)
        assert mini.initial == "d0"
        assert mini.validate() == []

    def test_rebuild_rejects_dropped_initial(self):
        stg = Stg("guard")
        stg.add_state(StgState("R", StateKind.GLOBAL_RESET))
        stg.add_state(StgState("D", StateKind.GLOBAL_DONE))
        stg.initial = "R"
        stg.add_transition(StgTransition("R", "D"))
        with pytest.raises(StgError, match="initial"):
            _rebuild(stg, keep={"D"}, transitions=[], name="broken")


class TestMemoryCellBoundaries:
    def test_write_tick_equal_to_read_end_is_disjoint(self):
        earlier = MemoryCell("e1", address=0, words=4, live_from=0,
                             live_until=10)
        later = MemoryCell("e2", address=0, words=4, live_from=10,
                           live_until=20)
        # the write of `later` lands exactly on the read-end tick of
        # `earlier`: half-open lifetimes, the cells may share addresses
        assert not earlier.overlaps_in_time(later)
        assert not later.overlaps_in_time(earlier)
        assert earlier.overlaps_in_space(later)

    def test_one_tick_overlap_collides(self):
        earlier = MemoryCell("e1", address=0, words=4, live_from=0,
                             live_until=10)
        later = MemoryCell("e2", address=0, words=4, live_from=9,
                           live_until=20)
        assert earlier.overlaps_in_time(later)
        assert later.overlaps_in_time(earlier)

    @pytest.mark.parametrize("spec", WORKLOAD_SPECS,
                             ids=lambda s: s.family)
    def test_reused_cells_match_executor_traces(self, spec):
        """With lifetime reuse on, the StgExecutor-driven co-simulation
        must still produce the golden outputs -- the system-level check
        that the half-open boundary convention is safe in execution."""
        graph = spec.build()
        stimuli = stimuli_for(graph, seed=5)
        flow = CoolFlow(minimal_board(), partitioner=GreedyPartitioner(),
                        reuse_memory=True)
        result = flow.run(graph, stimuli=stimuli)
        memory_map = result.plan.memory_map
        assert memory_map.validate() == []
        # space-sharing cells must be strictly ordered in time with
        # at most touching boundaries
        cells = sorted(memory_map.cells.values(),
                       key=lambda c: (c.live_from, c.edge))
        for i, a in enumerate(cells):
            for b in cells[i + 1:]:
                if a.overlaps_in_space(b):
                    assert a.live_until <= b.live_from \
                        or b.live_until <= a.live_from
        golden = execute(graph, stimuli)
        assert result.sim_result is not None
        for node in graph.outputs():
            assert result.sim_result.outputs[node.name] == golden[node.name]
