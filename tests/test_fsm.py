"""Unit + property tests for the FSM core."""

import pytest
from hypothesis import given, strategies as st

from repro.controllers import Fsm, FsmError, encode_states


def traffic_light() -> Fsm:
    fsm = Fsm("light")
    fsm.add_state("red", outputs=("stop",))
    fsm.add_state("green", outputs=("drive",))
    fsm.add_state("yellow")
    fsm.add_transition("red", "green", conditions=("timer",))
    fsm.add_transition("green", "yellow", conditions=("timer",))
    fsm.add_transition("yellow", "red", conditions=("timer",))
    return fsm


class TestFsmBasics:
    def test_first_state_becomes_initial(self):
        fsm = traffic_light()
        assert fsm.initial == "red"

    def test_duplicate_state_rejected(self):
        fsm = traffic_light()
        with pytest.raises(FsmError):
            fsm.add_state("red")

    def test_transition_unknown_state_rejected(self):
        fsm = traffic_light()
        with pytest.raises(FsmError):
            fsm.add_transition("red", "ghost")

    def test_inputs_outputs_inventory(self):
        fsm = traffic_light()
        assert fsm.inputs == ["timer"]
        assert set(fsm.outputs) == {"stop", "drive"}

    def test_validate_detects_unreachable(self):
        fsm = traffic_light()
        fsm.add_state("island")
        assert any("unreachable" in p for p in fsm.validate())

    def test_validate_clean(self):
        assert traffic_light().validate() == []


class TestSimulation:
    def test_step_holds_without_condition(self):
        fsm = traffic_light()
        state, outputs = fsm.step("red", set())
        assert state == "red"
        assert outputs == ("stop",)

    def test_step_fires_on_condition(self):
        fsm = traffic_light()
        state, outputs = fsm.step("red", {"timer"})
        assert state == "green"

    def test_moore_outputs_of_current_state(self):
        fsm = traffic_light()
        _, outputs = fsm.step("green", set())
        assert "drive" in outputs

    def test_simulate_cycle(self):
        fsm = traffic_light()
        log = fsm.simulate([{"timer"}] * 3)
        assert [state for state, _ in log] == ["green", "yellow", "red"]

    def test_priority_resolves_overlap(self):
        fsm = Fsm("prio")
        fsm.add_state("a")
        fsm.add_state("b")
        fsm.add_state("c")
        fsm.add_transition("a", "b", conditions=("x",))
        fsm.add_transition("a", "c", conditions=("x",))  # lower priority
        state, _ = fsm.step("a", {"x"})
        assert state == "b"

    def test_mealy_actions_emitted_once(self):
        fsm = Fsm("pulse")
        fsm.add_state("idle")
        fsm.add_state("busy")
        fsm.add_transition("idle", "busy", conditions=("start",),
                           actions=("ack",))
        fsm.add_transition("busy", "idle", conditions=("stop",))
        log = fsm.simulate([{"start"}, set(), {"stop"}])
        assert log[0] == ("busy", ("ack",))
        assert log[1] == ("busy", ())


class TestMinimize:
    def test_equivalent_states_merge(self):
        fsm = Fsm("dup")
        fsm.add_state("s0")
        fsm.add_state("a")
        fsm.add_state("b")
        fsm.add_state("end")
        fsm.add_transition("s0", "a", conditions=("p",))
        fsm.add_transition("s0", "b", conditions=("q",))
        fsm.add_transition("a", "end", conditions=("t",), actions=("out",))
        fsm.add_transition("b", "end", conditions=("t",), actions=("out",))
        fsm.add_transition("end", "s0")
        reduced = fsm.minimize()
        assert len(reduced.states) == 3

    def test_behaviour_preserved_under_minimize(self):
        fsm = traffic_light()
        reduced = fsm.minimize()
        trace = [{"timer"} if i % 2 else set() for i in range(10)]
        assert [o for _, o in fsm.simulate(trace)] == \
            [o for _, o in reduced.simulate(trace)]

    def test_distinct_states_not_merged(self):
        fsm = traffic_light()
        assert len(fsm.minimize().states) == 3

    def test_initial_state_represents_its_block(self):
        """Regression: the representative of a block containing the
        initial state must be the initial state itself -- callers
        reference the canonical entry name in transition labels, and a
        first-declared representative used to be able to drop it."""
        fsm = Fsm("entry")
        fsm.add_state("a")
        fsm.add_state("b")
        fsm.add_state("end")
        fsm.add_transition("a", "end", conditions=("t",), actions=("out",))
        fsm.add_transition("b", "end", conditions=("t",), actions=("out",))
        fsm.initial = "b"  # equivalent to "a", but "b" is the entry
        reduced = fsm.minimize()
        assert reduced.initial == "b"
        assert "b" in reduced.states
        assert "a" not in reduced.states
        assert len(reduced.states) == 2
        trace = [{"t"}, set(), {"t"}]
        assert [o for _, o in fsm.simulate(trace)] == \
            [o for _, o in reduced.simulate(trace)]

    def test_minimize_deterministic_ordering(self):
        fsm = traffic_light()
        first = fsm.minimize()
        second = fsm.minimize()
        assert first.states == second.states
        assert first.transitions == second.transitions
        assert first.initial == second.initial


class TestEncoding:
    def test_binary_width(self):
        fsm = traffic_light()
        codes = encode_states(fsm, "binary")
        assert all(len(c) == 2 for c in codes.values())
        assert len(set(codes.values())) == 3

    def test_one_hot(self):
        fsm = traffic_light()
        codes = encode_states(fsm, "one_hot")
        assert all(c.count("1") == 1 for c in codes.values())
        assert all(len(c) == 3 for c in codes.values())

    def test_gray_adjacent_single_bit(self):
        fsm = Fsm("g")
        for i in range(8):
            fsm.add_state(f"s{i}")
        codes = encode_states(fsm, "gray")
        ordered = [codes[f"s{i}"] for i in range(8)]
        for a, b in zip(ordered, ordered[1:]):
            assert sum(x != y for x, y in zip(a, b)) == 1

    def test_unknown_scheme_rejected(self):
        with pytest.raises(FsmError):
            encode_states(traffic_light(), "quantum")

    def test_empty_fsm_rejected(self):
        with pytest.raises(FsmError):
            encode_states(Fsm("empty"), "binary")

    @given(st.integers(min_value=1, max_value=40))
    def test_encodings_always_unique(self, n):
        fsm = Fsm("n")
        for i in range(n):
            fsm.add_state(f"s{i}")
        for scheme in ("binary", "one_hot", "gray"):
            codes = encode_states(fsm, scheme)
            assert len(set(codes.values())) == n
