"""Unit tests for repro.graph.partition (coloured partitioning graphs)."""

import pytest

from repro.graph import (IO_RESOURCE, Partition, PartitionError, TaskGraph,
                         all_hardware, all_software, from_mapping)


@pytest.fixture
def chain() -> TaskGraph:
    g = TaskGraph("chain")
    g.add_node(name="in0", kind="input", words=2)
    g.add_node(name="a", kind="copy", words=2)
    g.add_node(name="b", kind="gain", params={"factor": 2}, words=2)
    g.add_node(name="out0", kind="output", words=2)
    g.add_edge("in0", "a")
    g.add_edge("a", "b")
    g.add_edge("b", "out0")
    return g


class TestConstruction:
    def test_io_nodes_pinned_automatically(self, chain):
        part = all_software(chain, "cpu")
        assert part.resource_of("in0") == IO_RESOURCE
        assert part.resource_of("out0") == IO_RESOURCE

    def test_missing_colour_rejected(self, chain):
        with pytest.raises(PartitionError):
            Partition(chain, {"a": "cpu"}, (), ("cpu",))

    def test_unknown_resource_rejected(self, chain):
        with pytest.raises(PartitionError):
            Partition(chain, {"a": "ghost", "b": "cpu"}, (), ("cpu",))

    def test_internal_node_on_io_rejected(self, chain):
        with pytest.raises(PartitionError):
            Partition(chain, {"a": IO_RESOURCE, "b": "cpu"}, (), ("cpu",))

    def test_unknown_node_in_mapping_rejected(self, chain):
        with pytest.raises(PartitionError):
            Partition(chain, {"a": "cpu", "b": "cpu", "zz": "cpu"}, (), ("cpu",))

    def test_resource_in_both_sets_rejected(self, chain):
        with pytest.raises(PartitionError):
            Partition(chain, {"a": "x", "b": "x"}, ("x",), ("x",))


class TestQueries:
    def test_all_software_baseline(self, chain):
        part = all_software(chain, "cpu")
        assert part.sw_nodes() and not part.hw_nodes()
        assert part.nodes_on("cpu") == ["a", "b"]

    def test_all_hardware_baseline(self, chain):
        part = all_hardware(chain, "fpga0")
        assert part.hw_nodes() and not part.sw_nodes()

    def test_cut_edges_pure_software(self, chain):
        part = all_software(chain, "cpu")
        # io->a and b->io cross processing units; a->b stays local
        cut = {e.name for e in part.cut_edges()}
        assert cut == {"in0__to__a_p0", "b__to__out0_p0"}
        assert len(part.local_edges()) == 1

    def test_cut_edges_mixed(self, chain):
        part = from_mapping(chain, {"a": "cpu", "b": "fpga0"},
                            ("fpga0",), ("cpu",))
        assert {e.name for e in part.cut_edges()} == {
            "in0__to__a_p0", "a__to__b_p0", "b__to__out0_p0"}
        assert part.cut_bits() == 3 * 2 * 16

    def test_is_hardware_software(self, chain):
        part = from_mapping(chain, {"a": "cpu", "b": "fpga0"},
                            ("fpga0",), ("cpu",))
        assert part.is_software("a") and not part.is_hardware("a")
        assert part.is_hardware("b") and not part.is_software("b")

    def test_with_moved(self, chain):
        part = all_software(chain, "cpu", hw_resources=("fpga0",))
        moved = part.with_moved("b", "fpga0")
        assert moved.resource_of("b") == "fpga0"
        assert part.resource_of("b") == "cpu"  # original untouched

    def test_resources_used_and_summary(self, chain):
        part = from_mapping(chain, {"a": "cpu", "b": "fpga0"},
                            ("fpga0",), ("cpu",))
        assert set(part.resources_used) == {IO_RESOURCE, "cpu", "fpga0"}
        summary = part.summary()
        assert summary["hw_nodes"] == 1
        assert summary["sw_nodes"] == 1
        assert summary["cut_edges"] == 3
