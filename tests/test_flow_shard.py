"""Tests for the sharded map-reduce sweep engine (repro.flow.shard)."""

import dataclasses
import pickle
import threading

import pytest

from repro.flow import (JOB_TIMEOUT_SEMANTICS, BatchRunner,
                        DesignSpaceExplorer, ExplorationResult, FlowJob,
                        ShardError, map_reduce_sweep, sharded_sweep)
from repro.flow.batch import _point_from
from repro.flow.shard import (JobSummary, ShardPlanner, payload_of,
                              reduce_shards, run_shard)
from repro.partition import GreedyPartitioner, MilpPartitioner
from repro.platform import cool_board, minimal_board
from repro.workloads import workload_suite
import repro.flow.shard as shard_mod


class UnpicklablePartitioner(GreedyPartitioner):
    """A partitioner no process pool can ship (holds a thread lock)."""

    def __init__(self):
        super().__init__()
        self._lock = threading.Lock()


@pytest.fixture(autouse=True)
def _fresh_worker_cache():
    """In-process run_shard calls must not leak cache state across tests."""
    shard_mod._WORKER_CACHE = None
    shard_mod._WORKER_CACHE_FALLBACK = False
    yield
    shard_mod._WORKER_CACHE = None
    shard_mod._WORKER_CACHE_FALLBACK = False


def _suite_jobs(count=6, seed=11):
    arch = minimal_board()
    return [FlowJob(workload=spec, arch=arch,
                    partitioner=GreedyPartitioner())
            for spec in workload_suite(count, seed=seed)]


@pytest.fixture(scope="module")
def jobs():
    return _suite_jobs()


@pytest.fixture(scope="module")
def serial(jobs):
    """Reference semantics every sharded run must reproduce."""
    outcomes = BatchRunner(backend="serial").run(jobs)
    result = ExplorationResult(outcomes=outcomes)
    for outcome in outcomes:
        result.points.append(_point_from(outcome))
    return result


class TestShardPlanner:
    def test_assignment_is_content_based(self, jobs):
        planner = ShardPlanner(5)
        payloads = [payload_of(j, i) for i, j in enumerate(jobs)]
        # index and label never enter the fingerprint: renumbering and
        # relabelling a suite must not move any job to another shard
        moved = [dataclasses.replace(p, index=p.index + 100,
                                     label=f"renamed-{p.index}")
                 for p in payloads]
        assert [planner.assign(p) for p in payloads] == \
            [planner.assign(p) for p in moved]

    def test_plan_is_order_independent(self, jobs):
        payloads = [payload_of(j, i) for i, j in enumerate(jobs)]
        planner = ShardPlanner(3)
        forward = planner.plan(payloads)
        backward = planner.plan(list(reversed(payloads)))
        assert [s.fingerprint() for s in forward] == \
            [s.fingerprint() for s in backward]
        assert [s.job_indices for s in forward] == \
            [s.job_indices for s in backward]

    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_plan_covers_each_job_exactly_once(self, jobs, shards):
        payloads = [payload_of(j, i) for i, j in enumerate(jobs)]
        plan = ShardPlanner(shards).plan(payloads)
        covered = [i for shard in plan for i in shard.job_indices]
        assert sorted(covered) == list(range(len(jobs)))
        assert len(plan) <= shards
        assert all(shard.payloads for shard in plan)

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ShardError, match="shards"):
            ShardPlanner(0)

    def test_payloads_stay_compact(self, jobs):
        # the pickling contract: a spec-based payload (spec + arch +
        # engine + knobs) costs ~1.3 KB, vs kilobytes for a built graph
        # and ~75 KB for a FlowResult -- this is what makes the map
        # stage pay off
        payload = payload_of(jobs[0], 0)
        assert len(pickle.dumps(payload)) < 2048


class TestShardedIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 5])
    @pytest.mark.parametrize("map_order", ["planned", "reversed"])
    def test_identical_to_serial(self, jobs, serial, shards, map_order):
        result = map_reduce_sweep(jobs, shards=shards, max_workers=2,
                                  map_order=map_order)
        assert [o.ok for o in result.outcomes] == \
            [o.ok for o in serial.outcomes]
        assert result.points == serial.points
        assert result.pareto() == serial.pareto()
        assert result.ranked() == serial.ranked()

    def test_reversed_suite_same_points(self, jobs, serial):
        reversed_jobs = list(reversed(jobs))
        outcomes, _ = sharded_sweep(reversed_jobs, shards=2, max_workers=2)
        by_label = {o.job.name: o.point for o in outcomes}
        for outcome, point in zip(serial.outcomes, serial.points):
            assert by_label[outcome.job.name] == point

    def test_outcomes_carry_points_not_artifacts(self, jobs):
        outcomes, _ = sharded_sweep(jobs[:2], shards=1, max_workers=1)
        for outcome in outcomes:
            assert outcome.ok
            assert outcome.result is None
            assert outcome.point is not None

    def test_progress_streams_per_job(self, jobs):
        events = []
        sharded_sweep(jobs, shards=3, max_workers=2,
                      progress=lambda o, d, t: events.append((d, t)))
        assert [d for d, _ in events] == list(range(1, len(jobs) + 1))
        assert all(t == len(jobs) for _, t in events)


class TestReduceIntegrity:
    @pytest.fixture()
    def plan_and_outcomes(self, jobs):
        payloads = [payload_of(j, i) for i, j in enumerate(jobs)]
        plan = ShardPlanner(2).plan(payloads)
        assert len(plan) == 2, "suite must spread over both shards"
        return plan, [run_shard(shard) for shard in plan]

    def test_clean_reduce_merges_everything(self, plan_and_outcomes):
        plan, outcomes = plan_and_outcomes
        summaries, cache, front = reduce_shards(plan, outcomes)
        assert sorted(summaries) == sorted(
            s.index for shard in plan for s in shard.payloads)
        assert cache["caches"] == 2
        assert cache["hits"] + cache["misses"] > 0
        assert front  # at least one candidate per non-empty sweep

    def test_tampered_fingerprint_rejected(self, plan_and_outcomes):
        plan, outcomes = plan_and_outcomes
        tampered = dataclasses.replace(outcomes[0],
                                       fingerprint="deadbeefdeadbeef")
        with pytest.raises(ShardError, match="tampered or stale"):
            reduce_shards(plan, [tampered, outcomes[1]])

    def test_wrong_job_coverage_rejected(self, plan_and_outcomes):
        plan, outcomes = plan_and_outcomes
        truncated = dataclasses.replace(outcomes[0],
                                        summaries=outcomes[0].summaries[:-1])
        with pytest.raises(ShardError, match="tampered or incomplete"):
            reduce_shards(plan, [truncated, outcomes[1]])

    def test_unplanned_shard_rejected(self, plan_and_outcomes):
        plan, outcomes = plan_and_outcomes
        alien = dataclasses.replace(outcomes[0], shard_index=99)
        with pytest.raises(ShardError, match="unplanned"):
            reduce_shards(plan, [alien, outcomes[1]])

    def test_duplicate_shard_rejected(self, plan_and_outcomes):
        plan, outcomes = plan_and_outcomes
        with pytest.raises(ShardError, match="duplicate"):
            reduce_shards(plan, [outcomes[0], outcomes[0], outcomes[1]])

    def test_missing_shard_without_failure_rejected(self, plan_and_outcomes):
        plan, outcomes = plan_and_outcomes
        with pytest.raises(ShardError, match="no outcome"):
            reduce_shards(plan, outcomes[:1])

    def test_failed_shard_synthesizes_failed_summaries(self,
                                                       plan_and_outcomes):
        plan, outcomes = plan_and_outcomes
        summaries, _, _ = reduce_shards(
            plan, outcomes[1:], failures={plan[0].index: "worker died"})
        for payload in plan[0].payloads:
            summary = summaries[payload.index]
            assert not summary.ok
            assert "worker died" in summary.error
        for payload in plan[1].payloads:
            assert summaries[payload.index].ok


class TestShardBackendRunner:
    def test_one_knob_spelling_selects_shard_backend(self):
        runner = BatchRunner(shards=4)
        assert runner.backend == "shard"

    def test_shards_knob_rejected_on_other_backends(self):
        with pytest.raises(ValueError, match="shards"):
            BatchRunner(backend="process", shards=4)
        with pytest.raises(ValueError, match="shards"):
            BatchRunner(shards=0)

    def test_runner_matches_serial_and_records_stats(self, jobs, serial):
        runner = BatchRunner(shards=2, max_workers=2)
        outcomes = runner.run(jobs)
        assert [_point_from(o) for o in outcomes] == serial.points
        stats = runner.shard_stats
        assert stats is not None
        assert stats.planned_shards == len(stats.shards) == 2
        assert stats.cache["caches"] == 2
        assert sum(row["jobs"] for row in stats.shards) == len(jobs)
        assert all(row["seconds"] > 0 for row in stats.shards)

    def test_unpicklable_job_fails_at_submission_named(self, jobs):
        bad = FlowJob(workload=jobs[0].workload, arch=jobs[0].arch,
                      partitioner=UnpicklablePartitioner(), label="bad")
        events = []
        outcomes = BatchRunner(shards=2, max_workers=2).run(
            jobs[:2] + [bad],
            progress=lambda o, d, t: events.append(o.job.name))
        assert outcomes[0].ok and outcomes[1].ok
        assert not outcomes[2].ok
        assert "partitioner" in outcomes[2].error
        assert "pickle" in outcomes[2].error.lower()
        # rejected at submission: its outcome streams before any result
        assert events[0] == "bad"

    def test_job_timeout_discards_overbudget_results(self, jobs):
        runner = BatchRunner(shards=2, max_workers=2, job_timeout=1e-9)
        outcomes = runner.run(jobs[:3])
        assert all(not o.ok for o in outcomes)
        assert all("Timeout" in o.error and "budget" in o.error
                   for o in outcomes)
        assert all(o.point is None for o in outcomes)

    def test_timeout_semantics_recorded_for_every_backend(self):
        assert set(JOB_TIMEOUT_SEMANTICS) == \
            {"serial", "thread", "process", "shard"}
        assert "discarded" in JOB_TIMEOUT_SEMANTICS["shard"]


class TestWorkerCache:
    def test_worker_cache_warm_across_shards(self, jobs):
        # one worker process executes many shards against one cache: the
        # second pass over identical payloads is served entirely warm,
        # and the shard-window stats report it honestly (satellite: no
        # cold-pass dilution of the warm hit rate)
        payloads = [payload_of(j, i) for i, j in enumerate(jobs[:3])]
        plan = ShardPlanner(1).plan(payloads)
        cold = run_shard(plan[0])
        warm = run_shard(plan[0])
        assert cold.cache_stats["hits"] == 0
        assert cold.cache_stats["hit_rate"] == 0.0
        assert warm.cache_stats["misses"] == 0
        assert warm.cache_stats["hit_rate"] == 1.0
        assert all(s.stage_runs == 0 for s in warm.summaries)
        assert [s.point for s in cold.summaries] == \
            [s.point for s in warm.summaries]

    def test_summaries_stay_compact(self, jobs):
        payloads = [payload_of(j, i) for i, j in enumerate(jobs[:2])]
        outcome = run_shard(ShardPlanner(1).plan(payloads)[0])
        assert len(pickle.dumps(outcome)) < 4096, \
            "shard outcomes must never ship fat flow artifacts"


class TestWorkerCacheFallback:
    """Satellite: a worker whose initializer never ran used to fall back
    to a cold cache *silently*; the fallback is now recorded on every
    outcome and surfaced in the merged sweep stats."""

    def test_direct_run_shard_records_the_fallback(self, jobs):
        payloads = [payload_of(j, i) for i, j in enumerate(jobs[:2])]
        outcome = run_shard(ShardPlanner(1).plan(payloads)[0])
        assert outcome.cache_fallback
        assert outcome.cache_stats["cold_fallbacks"] == 1

    def test_initialized_worker_reports_no_fallback(self, jobs):
        shard_mod._init_worker(shard_mod.DEFAULT_WORKER_CACHE_ENTRIES)
        payloads = [payload_of(j, i) for i, j in enumerate(jobs[:2])]
        outcome = run_shard(ShardPlanner(1).plan(payloads)[0])
        assert not outcome.cache_fallback
        assert outcome.cache_stats["cold_fallbacks"] == 0

    def test_fallbacks_ride_the_numeric_merge(self, jobs):
        payloads = [payload_of(j, i) for i, j in enumerate(jobs)]
        plan = ShardPlanner(2).plan(payloads)
        assert len(plan) == 2
        _, cache, _ = reduce_shards(plan, [run_shard(s) for s in plan])
        assert cache["cold_fallbacks"] == 2

    def test_pooled_sweep_never_falls_back(self, jobs):
        _, stats = sharded_sweep(jobs[:3], shards=2, max_workers=2)
        assert stats.cache["cold_fallbacks"] == 0
        assert stats.shards, "sweep must have produced shard rows"
        assert all(not row["cache_fallback"] for row in stats.shards)


class TestStoreBackedShards:
    def test_fresh_worker_generation_warm_starts_from_store(self, jobs,
                                                            tmp_path):
        # generation 1 populates the store; generation 2 (fresh L1, same
        # store -- what a restarted worker pool sees) re-runs nothing
        store = tmp_path / "store"
        payloads = [payload_of(j, i) for i, j in enumerate(jobs[:3])]
        plan = ShardPlanner(1).plan(payloads)
        shard_mod._init_worker(64, str(store))
        cold = run_shard(plan[0])
        shard_mod._init_worker(64, str(store))
        warm = run_shard(plan[0])
        assert warm.cache_stats["misses"] == 0
        assert warm.cache_stats["l2"]["hits"] > 0
        assert warm.cache_stats["hit_rate"] == 1.0
        assert all(s.stage_runs == 0 for s in warm.summaries)
        assert [s.point for s in warm.summaries] == \
            [s.point for s in cold.summaries]

    def test_store_backed_sweep_matches_serial(self, jobs, serial,
                                               tmp_path):
        store = tmp_path / "store"
        cold = map_reduce_sweep(jobs, shards=2, max_workers=2,
                                store_path=store)
        assert cold.points == serial.points
        assert cold.pareto() == serial.pareto()
        # a second run -- fresh pool, different shard count -- is served
        # from the store and still bit-identical
        warm = map_reduce_sweep(jobs, shards=3, max_workers=2,
                                store_path=store)
        assert warm.points == serial.points
        assert warm.ranked() == serial.ranked()
        cache = warm.shard_stats.cache
        assert cache["misses"] == 0
        assert cache["l2"]["hits"] > 0
        assert cache["hit_rate"] == 1.0
        assert cache["cold_fallbacks"] == 0

    def test_storeless_stats_have_no_tier_views(self, jobs):
        _, stats = sharded_sweep(jobs[:2], shards=1, max_workers=1)
        assert "l2" not in stats.cache


class TestShardedExplorer:
    def test_explorer_on_shard_backend_matches_serial(self):
        specs = workload_suite(4, seed=23)
        architectures = [minimal_board(), cool_board()]
        partitioners = [GreedyPartitioner(), MilpPartitioner()]
        reference = DesignSpaceExplorer(
            specs, architectures, partitioners,
            runner=BatchRunner(backend="serial")).explore()
        sharded = DesignSpaceExplorer(
            specs, architectures, partitioners,
            runner=BatchRunner(shards=3, max_workers=2)).explore()
        assert sharded.points == reference.points
        assert sharded.pareto() == reference.pareto()
        assert sharded.ranked() == reference.ranked()


class TestSweepResult:
    def test_merged_front_equals_global_front(self, jobs, serial):
        result = map_reduce_sweep(jobs, shards=3, max_workers=2)
        assert result.front_candidates, "map stage must ship candidates"
        # the reduce-merged front must equal recomputing dominance over
        # every point from scratch (the serial reference)
        merged = result.pareto()
        global_front = ExplorationResult(points=result.points).pareto()
        assert merged == global_front == serial.pareto()

    def test_shard_stats_attached(self, jobs):
        result = map_reduce_sweep(jobs, shards=2, max_workers=2)
        stats = result.shard_stats
        assert stats.map_seconds > 0
        assert stats.workers == 2
        assert stats.cache["caches"] == len(stats.shards)

    def test_failures_collected_not_pointed(self, jobs):
        bad = FlowJob(workload=jobs[0].workload, arch=jobs[0].arch,
                      partitioner=UnpicklablePartitioner(), label="bad")
        result = map_reduce_sweep(jobs[:2] + [bad], shards=2, max_workers=2)
        assert len(result.points) == 2
        assert len(result.failures) == 1
        assert "partitioner" in result.failures[0].error


def test_job_summary_ok_property():
    good = JobSummary(index=0, label="a", point=None, error=None,
                      seconds=0.1, stage_runs=3)
    bad = JobSummary(index=1, label="b", point=None, error="boom",
                     seconds=0.1, stage_runs=0)
    assert good.ok and not bad.ok
