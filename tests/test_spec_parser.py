"""Unit tests for the specification parser."""

import pytest

from repro.spec import (AssignStmt, ProcessStmt, SpecSyntaxError, parse)

MINIMAL = """
entity tiny is
  port (
    x : in  word_vector(16, 4);
    y : out word_vector(16, 4)
  );
end entity tiny;

architecture dataflow of tiny is
  signal s : word_vector(16, 4);
begin
  n0 : process (x)
    generic map (factor => 3, shift => 1);
  begin
    s <= gain(x);
  end process;

  y <= s;
end architecture dataflow;
"""


class TestEntityParsing:
    def test_minimal_roundtrip(self):
        spec = parse(MINIMAL)
        assert [e.name for e in spec.entities] == ["tiny"]
        entity = spec.entities[0]
        assert [p.name for p in entity.ports] == ["x", "y"]
        assert entity.ports[0].direction == "in"
        assert entity.ports[1].direction == "out"
        assert entity.ports[0].vtype.width == 16
        assert entity.ports[0].vtype.words == 4

    def test_end_without_repeating_name(self):
        text = MINIMAL.replace("end entity tiny;", "end;")
        assert parse(text).entities[0].name == "tiny"

    def test_wrong_closing_name_rejected(self):
        text = MINIMAL.replace("end entity tiny;", "end entity wrong;")
        with pytest.raises(SpecSyntaxError):
            parse(text)

    def test_duplicate_port_rejected(self):
        text = MINIMAL.replace("y : out", "x : out")
        with pytest.raises(SpecSyntaxError) as exc:
            parse(text)
        assert "duplicate port" in str(exc.value)

    def test_zero_width_rejected(self):
        text = MINIMAL.replace("word_vector(16, 4)", "word_vector(0, 4)", 1)
        with pytest.raises(SpecSyntaxError):
            parse(text)


class TestArchitectureParsing:
    def test_process_fields(self):
        spec = parse(MINIMAL)
        arch = spec.architectures[0]
        assert arch.entity == "tiny"
        assert len(arch.processes) == 1
        proc = arch.processes[0]
        assert isinstance(proc, ProcessStmt)
        assert proc.label == "n0"
        assert proc.kind == "gain"
        assert proc.inputs == ("x",)
        assert proc.target == "s"
        assert proc.generic_dict() == {"factor": 3, "shift": 1}

    def test_assign_statement(self):
        arch = parse(MINIMAL).architectures[0]
        assert arch.assigns == (AssignStmt("y", "s", arch.assigns[0].line),)

    def test_multi_signal_decl(self):
        text = MINIMAL.replace("signal s : word_vector(16, 4);",
                               "signal s, t, u : word_vector(16, 4);")
        arch = parse(text).architectures[0]
        assert arch.signal_type("t").words == 4
        assert arch.signal_type("nope") is None

    def test_tuple_generics(self):
        text = MINIMAL.replace("factor => 3, shift => 1",
                               "taps => (1, -2, 3), sets => ((0, 5, 10), (5, 10, 15))")
        proc = parse(text).architectures[0].processes[0]
        assert proc.generic_dict()["taps"] == (1, -2, 3)
        assert proc.generic_dict()["sets"] == ((0, 5, 10), (5, 10, 15))

    def test_negative_generic(self):
        text = MINIMAL.replace("factor => 3", "factor => -3")
        proc = parse(text).architectures[0].processes[0]
        assert proc.generic_dict()["factor"] == -3

    def test_process_without_generics(self):
        text = MINIMAL.replace(
            "    generic map (factor => 3, shift => 1);\n", "")
        proc = parse(text).architectures[0].processes[0]
        assert proc.generics == ()

    def test_multi_input_process(self):
        text = """
entity two is
  port (a : in word_vector(8, 2); b : in word_vector(8, 2);
        y : out word_vector(8, 2));
end entity;
architecture rtl of two is
  signal s : word_vector(8, 2);
begin
  adder : process (a, b)
  begin
    s <= add(a, b);
  end process;
  y <= s;
end architecture;
"""
        proc = parse(text).architectures[0].processes[0]
        assert proc.inputs == ("a", "b")

    def test_missing_semicolon_reports_location(self):
        text = MINIMAL.replace("y <= s;", "y <= s")
        with pytest.raises(SpecSyntaxError) as exc:
            parse(text)
        assert exc.value.line is not None

    def test_garbage_toplevel_rejected(self):
        with pytest.raises(SpecSyntaxError) as exc:
            parse("procedure nope;")
        assert "expected 'entity' or 'architecture'" in str(exc.value)
