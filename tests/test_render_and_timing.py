"""Tests for DOT rendering and the design-time model."""

import pytest

from repro.apps import four_band_equalizer
from repro.estimate import CostModel
from repro.flow import DesignTimeModel, DesignTimeReport
from repro.graph import (from_mapping, graph_to_dot, partition_to_dot)
from repro.platform import minimal_board
from repro.schedule import list_schedule
from repro.stg import build_stg, stg_to_dot


def partitioned():
    graph = four_band_equalizer(words=4)
    arch = minimal_board()
    mapping = {n.name: "dsp0" for n in graph.internal_nodes()}
    mapping["band0"] = "fpga0"
    partition = from_mapping(graph, mapping, arch.fpga_names,
                             arch.processor_names)
    return graph, arch, partition


class TestDotRendering:
    def test_graph_dot_mentions_all_nodes_and_edges(self):
        graph, *_ = partitioned()
        dot = graph_to_dot(graph)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        for node in graph.nodes:
            assert f'"{node.name}"' in dot
        assert dot.count("->") == len(graph.edges)

    def test_partition_dot_colours_and_cuts(self):
        graph, arch, partition = partitioned()
        dot = partition_to_dot(partition)
        assert "fillcolor" in dot
        # cut edges highlighted
        assert dot.count("color=red") == len(partition.cut_edges())
        assert "[fpga0]" in dot and "[dsp0]" in dot

    def test_stg_dot_marks_initial_state(self):
        graph, arch, partition = partitioned()
        schedule = list_schedule(partition, CostModel(graph, arch))
        stg = build_stg(schedule)
        dot = stg_to_dot(stg)
        assert "doublecircle" in dot  # the initial (global reset) state
        assert '"w_band0"' in dot
        # guard / action labels present
        assert "done_band0" in dot
        assert "start_band0" in dot


class TestDesignTimeModel:
    def test_hardware_seconds_scale_with_clbs(self):
        model = DesignTimeModel(seconds_per_clb=10, per_device_s=100)
        small = model.hardware_seconds({"fpga0": 10})
        large = model.hardware_seconds({"fpga0": 100})
        assert large - small == 10 * 90

    def test_empty_devices_cost_nothing(self):
        model = DesignTimeModel()
        assert model.hardware_seconds({"fpga0": 0, "fpga1": 0}) == 0.0

    def test_per_device_overhead_once_per_used_device(self):
        model = DesignTimeModel(seconds_per_clb=0, per_device_s=100)
        assert model.hardware_seconds({"a": 1, "b": 1, "c": 0}) == 200

    def test_report_totals_and_fraction(self):
        report = DesignTimeReport(
            measured_stages={"partitioning": 2.0, "stg": 1.0},
            hw_synthesis_s=970.0, sw_compile_s=17.0, board_setup_s=10.0)
        assert report.measured_total_s == pytest.approx(3.0)
        assert report.total_s == pytest.approx(1000.0)
        assert report.hw_fraction == pytest.approx(0.97)

    def test_rows_cover_all_components(self):
        report = DesignTimeReport(measured_stages={"stg": 1.0},
                                  hw_synthesis_s=5.0, sw_compile_s=2.0)
        labels = [label for label, _ in report.rows()]
        assert "flow: stg" in labels
        assert any("hw synthesis" in label for label in labels)
        assert any("sw compile" in label for label in labels)

    def test_zero_total_fraction(self):
        report = DesignTimeReport(board_setup_s=0.0)
        assert report.hw_fraction == 0.0
