"""Unit + property tests for STG construction, execution and minimization."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import four_band_equalizer, fuzzy_controller, random_task_graph
from repro.estimate import CostModel
from repro.graph import from_mapping
from repro.platform import cool_board, minimal_board
from repro.schedule import list_schedule
from repro.stg import (StateKind, Stg, StgError, StgExecutor, StgState,
                       StgTransition, build_stg, minimize_stg, stg_summary_text,
                       stg_to_dot)


def make_setup(graph, arch, hw_nodes=()):
    mapping = {}
    for node in graph.internal_nodes():
        mapping[node.name] = arch.fpga_names[0] if node.name in hw_nodes \
            else arch.processor_names[0]
    partition = from_mapping(graph, mapping, arch.fpga_names,
                             arch.processor_names)
    model = CostModel(graph, arch)
    schedule = list_schedule(partition, model)
    return partition, schedule


@pytest.fixture(scope="module")
def equalizer_stg():
    graph = four_band_equalizer(words=8)
    partition, schedule = make_setup(graph, minimal_board(),
                                     {"band0", "gain0", "band1"})
    return graph, partition, schedule, build_stg(schedule)


def auto_run(stg, max_rounds=500):
    """Drive an STG with an ideal environment: every started node
    reports done in the following step.  Returns the executor."""
    ex = StgExecutor(stg)
    pending: set[str] = set()
    for _ in range(max_rounds):
        actions = ex.step(pending)
        pending = {"done_" + a[len("start_"):]
                   for a in actions if a.startswith("start_")}
        if ex.done:
            break
        if not actions and not pending:
            break
    return ex


def flat_actions(ex):
    return [a for fired in ex.action_trace() for a in fired]


def starts_by_resource(ex, partition):
    """Project the start-action sequence onto each processing unit.

    Concurrent chains may interleave differently between two equivalent
    STGs; the per-unit projections and the data-dependency order are the
    observable behaviour.
    """
    projected: dict[str, list[str]] = {}
    for action in flat_actions(ex):
        if not action.startswith("start_"):
            continue
        node = action[len("start_"):]
        resource = partition.resource_of(node)
        projected.setdefault(resource, []).append(node)
    return projected


def assert_equivalent_traces(ex_a, ex_b, partition):
    graph = partition.graph
    assert starts_by_resource(ex_a, partition) == \
        starts_by_resource(ex_b, partition)
    assert sorted(flat_actions(ex_a)) == sorted(flat_actions(ex_b))
    for ex in (ex_a, ex_b):
        starts = [a for a in flat_actions(ex) if a.startswith("start_")]
        position = {a[len("start_"):]: i for i, a in enumerate(starts)}
        for edge in graph.edges:
            assert position[edge.src] < position[edge.dst]


class TestStgStates:
    def test_state_kind_constraints(self):
        with pytest.raises(StgError):
            StgState("w_a", StateKind.WAIT)  # node missing
        with pytest.raises(StgError):
            StgState("r_x", StateKind.RESET)  # resource missing
        with pytest.raises(StgError):
            StgState("R", StateKind.GLOBAL_RESET, node="a")

    def test_duplicate_state_rejected(self):
        stg = Stg()
        stg.add_state(StgState("R", StateKind.GLOBAL_RESET))
        with pytest.raises(StgError):
            stg.add_state(StgState("R", StateKind.GLOBAL_RESET))

    def test_transition_unknown_state_rejected(self):
        stg = Stg()
        stg.add_state(StgState("R", StateKind.GLOBAL_RESET))
        with pytest.raises(StgError):
            stg.add_transition(StgTransition("R", "ghost"))

    def test_conditions_and_actions_sorted(self):
        t = StgTransition("a", "b", conditions=("z", "a"), actions=("y", "b"))
        assert t.conditions == ("a", "z")
        assert t.actions == ("b", "y")


class TestBuilder:
    def test_paper_state_count(self, equalizer_stg):
        graph, partition, schedule, stg = equalizer_stg
        n = len(graph.nodes)
        n_res = len(partition.resources_used)
        # 3 states per node + 1 reset per resource + global X, R, D
        assert len(stg) == 3 * n + n_res + 3

    def test_kind_counts(self, equalizer_stg):
        graph, partition, _, stg = equalizer_stg
        n = len(graph.nodes)
        assert len(stg.states_of_kind(StateKind.WAIT)) == n
        assert len(stg.states_of_kind(StateKind.EXEC)) == n
        assert len(stg.states_of_kind(StateKind.DONE)) == n
        assert len(stg.states_of_kind(StateKind.RESET)) == \
            len(partition.resources_used)
        for kind in (StateKind.GLOBAL_RESET, StateKind.GLOBAL_EXEC,
                     StateKind.GLOBAL_DONE):
            assert len(stg.states_of_kind(kind)) == 1

    def test_initial_state_is_global_reset(self, equalizer_stg):
        *_, stg = equalizer_stg
        assert stg.initial == "R"
        assert stg.state("R").kind == StateKind.GLOBAL_RESET

    def test_validates_clean(self, equalizer_stg):
        *_, stg = equalizer_stg
        assert stg.validate() == []

    def test_cross_resource_guards_present(self, equalizer_stg):
        graph, partition, _, stg = equalizer_stg
        for edge in partition.cut_edges():
            wait_exits = stg.out_transitions(f"w_{edge.dst}")
            assert len(wait_exits) == 1
            assert f"done_{edge.src}" in wait_exits[0].conditions
            assert f"read_{edge.name}" in wait_exits[0].actions

    def test_local_edges_have_no_guards(self, equalizer_stg):
        graph, partition, _, stg = equalizer_stg
        for edge in partition.local_edges():
            wait_exits = stg.out_transitions(f"w_{edge.dst}")
            assert f"done_{edge.src}" not in wait_exits[0].conditions

    def test_write_actions_on_exec_exit(self, equalizer_stg):
        graph, partition, _, stg = equalizer_stg
        for edge in partition.cut_edges():
            exec_exits = stg.out_transitions(f"x_{edge.src}")
            assert len(exec_exits) == 1
            assert f"write_{edge.name}" in exec_exits[0].actions
            assert f"done_{edge.src}" in exec_exits[0].conditions

    def test_schedule_chains_follow_resource_order(self, equalizer_stg):
        _, partition, schedule, stg = equalizer_stg
        for resource in partition.resources_used:
            order = [e.node for e in schedule.on_resource(resource)]
            for prev, nxt in zip(order, order[1:]):
                targets = [t.dst for t in stg.out_transitions(f"d_{prev}")]
                assert f"w_{nxt}" in targets

    def test_render_helpers(self, equalizer_stg):
        *_, stg = equalizer_stg
        dot = stg_to_dot(stg)
        assert "digraph" in dot and "w_band0" in dot
        assert "states" in stg_summary_text(stg)


class TestExecutor:
    def test_runs_to_completion(self, equalizer_stg):
        *_, stg = equalizer_stg
        ex = auto_run(stg)
        assert ex.done

    def test_every_node_started_exactly_once(self, equalizer_stg):
        graph, *_, stg = equalizer_stg
        ex = auto_run(stg)
        starts = [a for a in flat_actions(ex) if a.startswith("start_")]
        assert sorted(starts) == sorted(f"start_{n.name}"
                                        for n in graph.nodes)

    def test_start_order_respects_data_dependencies(self, equalizer_stg):
        graph, *_, stg = equalizer_stg
        ex = auto_run(stg)
        starts = [a for a in flat_actions(ex) if a.startswith("start_")]
        position = {a[len("start_"):]: i for i, a in enumerate(starts)}
        for edge in graph.edges:
            assert position[edge.src] < position[edge.dst]

    def test_resets_issued_first(self, equalizer_stg):
        _, partition, _, stg = equalizer_stg
        ex = auto_run(stg)
        actions = flat_actions(ex)
        last_reset = max(i for i, a in enumerate(actions)
                         if a.startswith("reset_"))
        first_start = min(i for i, a in enumerate(actions)
                          if a.startswith("start_"))
        assert last_reset < first_start
        resets = {a for a in actions if a.startswith("reset_")}
        assert resets == {f"reset_{r}" for r in partition.resources_used}

    def test_no_progress_without_done_signals(self, equalizer_stg):
        *_, stg = equalizer_stg
        ex = StgExecutor(stg)
        ex.step()  # resets fire, first starts issued
        stuck_actions = ex.step()  # nothing new: units never report done
        assert stuck_actions == []
        assert not ex.done

    def test_reset_restarts_cleanly(self, equalizer_stg):
        *_, stg = equalizer_stg
        ex = auto_run(stg)
        first_trace = list(ex.action_trace())
        ex.reset()
        pending: set[str] = set()
        for _ in range(500):
            actions = ex.step(pending)
            pending = {"done_" + a[len("start_"):]
                       for a in actions if a.startswith("start_")}
            if ex.done:
                break
        assert ex.action_trace() == first_trace


class TestMinimization:
    def test_states_reduced(self, equalizer_stg):
        *_, stg = equalizer_stg
        mini, report = minimize_stg(stg)
        assert report.states_after < report.states_before
        assert len(mini) == report.states_after
        assert report.reduction > 0.3

    def test_minimized_still_valid(self, equalizer_stg):
        *_, stg = equalizer_stg
        mini, _ = minimize_stg(stg)
        assert mini.validate() == []

    def test_behaviour_preserved(self, equalizer_stg):
        _, partition, _, stg = equalizer_stg
        mini, _ = minimize_stg(stg)
        ex_full = auto_run(stg)
        ex_mini = auto_run(mini)
        assert ex_full.done and ex_mini.done
        assert_equivalent_traces(ex_full, ex_mini, partition)

    def test_guarded_waits_survive(self, equalizer_stg):
        _, partition, _, stg = equalizer_stg
        mini, _ = minimize_stg(stg)
        guarded = {f"w_{e.dst}" for e in partition.cut_edges()}
        for name in guarded:
            assert name in mini

    def test_equivalent_merge_on_synthetic_stg(self):
        # two identical parallel chains on the same resource merge
        stg = Stg("synthetic")
        stg.add_state(StgState("R", StateKind.GLOBAL_RESET))
        stg.add_state(StgState("D", StateKind.GLOBAL_DONE))
        for name in ("a", "b"):
            stg.add_state(StgState(f"x_{name}", StateKind.EXEC,
                                   node=name, resource="cpu"))
        stg.initial = "R"
        for name in ("a", "b"):
            stg.add_transition(StgTransition("R", f"x_{name}",
                                             actions=("go",)))
            stg.add_transition(StgTransition(f"x_{name}", "D",
                                             conditions=("fin",)))
        mini, report = minimize_stg(stg, contract_waits=False,
                                    contract_dones=False)
        assert report.equivalents_merged == 1
        assert len(mini) == 3

    def test_partial_minimization_flags(self, equalizer_stg):
        *_, stg = equalizer_stg
        only_waits, r1 = minimize_stg(stg, contract_dones=False,
                                      merge_equivalent=False)
        assert r1.dones_contracted == 0 and r1.waits_contracted > 0
        only_dones, r2 = minimize_stg(stg, contract_waits=False,
                                      merge_equivalent=False)
        assert r2.waits_contracted == 0 and r2.dones_contracted > 0


class TestStgPropertyBased:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=8, max_value=30),
           st.integers(min_value=0, max_value=500),
           st.integers(min_value=0, max_value=500))
    def test_random_stg_minimization_preserves_behaviour(self, n, gseed,
                                                         pseed):
        graph = random_task_graph(n, seed=gseed)
        arch = cool_board()
        rng = random.Random(pseed)
        mapping = {node.name: rng.choice(arch.resource_names)
                   for node in graph.internal_nodes()}
        partition = from_mapping(graph, mapping, arch.fpga_names,
                                 arch.processor_names)
        schedule = list_schedule(partition, CostModel(graph, arch))
        stg = build_stg(schedule)
        assert stg.validate() == []
        mini, report = minimize_stg(stg)
        assert report.states_after <= report.states_before
        ex_full, ex_mini = auto_run(stg), auto_run(mini)
        assert ex_full.done and ex_mini.done
        assert_equivalent_traces(ex_full, ex_mini, partition)

    def test_fuzzy_stg_counts(self):
        graph = fuzzy_controller()
        partition, schedule = make_setup(
            graph, cool_board(), {"fz_e", "fz_de", "defuzz"})
        stg = build_stg(schedule)
        # 31 nodes -> 93 node states (+resources +3 global)
        assert len(stg.states_of_kind(StateKind.WAIT)) == 31
        mini, report = minimize_stg(stg)
        assert report.states_after < report.states_before
