"""Unit tests for elaboration and the spec printer round-trip."""

import pytest

from repro.graph import TaskGraph, execute, make_node
from repro.spec import (SpecSemanticError, elaborate, elaborate_text,
                        graph_to_spec, parse)

DIAMOND = """
entity mixer is
  port (
    x : in  word_vector(16, 4);
    y : out word_vector(16, 4)
  );
end entity mixer;

architecture dataflow of mixer is
  signal a_out : word_vector(16, 4);
  signal b_out : word_vector(16, 4);
  signal m_out : word_vector(16, 4);
begin
  a : process (x)
    generic map (factor => 2);
  begin
    a_out <= gain(x);
  end process;

  b : process (x)
    generic map (factor => 3);
  begin
    b_out <= gain(x);
  end process;

  m : process (a_out, b_out)
  begin
    m_out <= add(a_out, b_out);
  end process;

  y <= m_out;
end architecture dataflow;
"""


class TestElaborate:
    def test_diamond_structure(self):
        graph = elaborate_text(DIAMOND)
        assert graph.name == "mixer"
        assert sorted(graph.node_names) == ["a", "b", "m", "x", "y"]
        assert graph.predecessors("m") == ["a", "b"]
        assert graph.successors("m") == ["y"]

    def test_elaborated_graph_is_executable(self):
        graph = elaborate_text(DIAMOND)
        values = execute(graph, {"x": [1, 2, 3, 4]})
        assert values["y"] == [5, 10, 15, 20]

    def test_node_shapes_from_signal_types(self):
        graph = elaborate_text(DIAMOND)
        node = graph.node("a")
        assert (node.width, node.words) == (16, 4)
        assert node.params == {"factor": 2}

    def test_multiple_entities_need_selection(self):
        text = DIAMOND + DIAMOND.replace("mixer", "mixer2")
        with pytest.raises(SpecSemanticError):
            elaborate(parse(text))
        graph = elaborate(parse(text), "mixer2")
        assert graph.name == "mixer2"

    def test_unknown_entity(self):
        with pytest.raises(SpecSemanticError):
            elaborate(parse(DIAMOND), "nope")

    def test_missing_architecture(self):
        text = """
entity lonely is
  port (x : in word_vector(8, 1); y : out word_vector(8, 1));
end entity;
"""
        with pytest.raises(SpecSemanticError) as exc:
            elaborate_text(text)
        assert "no architecture" in str(exc.value)

    def test_double_driver_rejected(self):
        text = DIAMOND.replace("b_out <= gain(x);", "a_out <= gain(x);", 1)
        # make signatures consistent: process b now also drives a_out
        with pytest.raises(SpecSemanticError) as exc:
            elaborate_text(text)
        assert "multiple drivers" in str(exc.value)

    def test_undeclared_signal_rejected(self):
        text = DIAMOND.replace("m_out <= add(a_out, b_out);",
                               "m_out <= add(a_out, ghost);").replace(
            "m : process (a_out, b_out)", "m : process (a_out, ghost)")
        with pytest.raises(SpecSemanticError) as exc:
            elaborate_text(text)
        assert "ghost" in str(exc.value)

    def test_sensitivity_mismatch_rejected(self):
        text = DIAMOND.replace("m : process (a_out, b_out)",
                               "m : process (a_out)")
        with pytest.raises(SpecSemanticError) as exc:
            elaborate_text(text)
        assert "sensitivity" in str(exc.value)

    def test_undriven_output_rejected(self):
        text = DIAMOND.replace("y <= m_out;", "")
        with pytest.raises(SpecSemanticError) as exc:
            elaborate_text(text)
        assert "never driven" in str(exc.value)

    def test_assign_type_mismatch_rejected(self):
        text = DIAMOND.replace(
            "signal m_out : word_vector(16, 4);",
            "signal m_out : word_vector(16, 8);")
        with pytest.raises(SpecSemanticError):
            elaborate_text(text)

    def test_driving_port_directly_rejected(self):
        text = """
entity direct is
  port (x : in word_vector(8, 1); y : out word_vector(8, 1));
end entity;
architecture a of direct is
begin
  n : process (x)
  begin
    y <= copy(x);
  end process;
end architecture;
"""
        with pytest.raises(SpecSemanticError) as exc:
            elaborate_text(text)
        assert "drives port" in str(exc.value)


class TestPrinterRoundTrip:
    def _roundtrip(self, graph: TaskGraph) -> TaskGraph:
        return elaborate_text(graph_to_spec(graph))

    def test_roundtrip_preserves_structure_and_behaviour(self):
        graph = TaskGraph("rt")
        graph.add_node(make_node("in0", "input", width=16, words=8))
        graph.add_node(make_node("f", "fir", {"taps": (1, 2, 3, 2, 1)},
                                 width=16, words=8))
        graph.add_node(make_node("g", "gain", {"factor": -2}, width=16, words=8))
        graph.add_node(make_node("s", "add", width=16, words=8))
        graph.add_node(make_node("out0", "output", width=16, words=8))
        graph.add_edge("in0", "f")
        graph.add_edge("in0", "g")
        graph.add_edge("f", "s")
        graph.add_edge("g", "s")
        graph.add_edge("s", "out0")

        back = self._roundtrip(graph)
        assert sorted(back.node_names) == sorted(graph.node_names)
        stim = {"in0": [1, 0, 0, 2, 0, 0, 0, 5]}
        assert execute(back, stim) == execute(graph, stim)

    def test_roundtrip_nested_tuple_params(self):
        graph = TaskGraph("fz")
        graph.add_node(make_node("in0", "input", width=16, words=1))
        graph.add_node(make_node("fz", "fuzzify",
                                 {"sets": ((-10, 0, 10), (0, 10, 20)),
                                  "scale": 100}, width=16, words=2))
        graph.add_node(make_node("df", "defuzz", {"centroids": (0, 100)},
                                 width=16, words=1))
        graph.add_node(make_node("out0", "output", width=16, words=1))
        graph.add_edge("in0", "fz")
        graph.add_edge("fz", "df")
        graph.add_edge("df", "out0")

        back = self._roundtrip(graph)
        assert back.node("fz").params["sets"] == ((-10, 0, 10), (0, 10, 20))
        stim = {"in0": [5]}
        assert execute(back, stim) == execute(graph, stim)

    def test_spec_text_mentions_every_node(self):
        graph = TaskGraph("t")
        graph.add_node(make_node("in0", "input", words=2))
        graph.add_node(make_node("n0", "copy", words=2))
        graph.add_node(make_node("out0", "output", words=2))
        graph.add_edge("in0", "n0")
        graph.add_edge("n0", "out0")
        text = graph_to_spec(graph)
        assert "entity t is" in text
        assert "n0 : process (in0)" in text
        assert "out0 <= n0_out;" in text
