"""Unit + property tests for memory-cell allocation (paper Fig. 3)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import four_band_equalizer, random_task_graph
from repro.estimate import CostModel
from repro.graph import from_mapping
from repro.partition.feasibility import edge_memory_words
from repro.platform import (Bus, MemoryDevice, TargetArchitecture, cool_board,
                            dsp56001, minimal_board, xc4005)
from repro.schedule import list_schedule
from repro.stg import MemoryError, allocate_memory, memory_map_text


def scheduled(graph, arch, hw_nodes=()):
    mapping = {}
    for node in graph.internal_nodes():
        mapping[node.name] = arch.fpga_names[0] if node.name in hw_nodes \
            else arch.processor_names[0]
    partition = from_mapping(graph, mapping, arch.fpga_names,
                             arch.processor_names)
    return list_schedule(partition, CostModel(graph, arch))


@pytest.fixture(scope="module")
def equalizer_schedule():
    return scheduled(four_band_equalizer(words=8), minimal_board(),
                     {"band0", "gain0", "band2"})


class TestAllocation:
    def test_every_cut_edge_gets_a_cell(self, equalizer_schedule):
        schedule = equalizer_schedule
        arch = minimal_board()
        memory_map = allocate_memory(schedule, arch)
        cut = {e.name for e in schedule.partition.cut_edges()}
        assert set(memory_map.cells) == cut

    def test_local_edges_get_no_cell(self, equalizer_schedule):
        memory_map = allocate_memory(equalizer_schedule, minimal_board())
        local = {e.name for e in equalizer_schedule.partition.local_edges()}
        assert not local & set(memory_map.cells)

    def test_addresses_start_at_base(self, equalizer_schedule):
        arch = minimal_board()
        memory_map = allocate_memory(equalizer_schedule, arch)
        addresses = [c.address for c in memory_map.cells.values()]
        assert min(addresses) == arch.memory.base_address

    def test_cell_sizes_match_payload(self, equalizer_schedule):
        arch = minimal_board()
        memory_map = allocate_memory(equalizer_schedule, arch)
        for edge in equalizer_schedule.partition.cut_edges():
            assert memory_map.cell(edge.name).words == \
                edge_memory_words(edge, arch)

    def test_validates_clean(self, equalizer_schedule):
        memory_map = allocate_memory(equalizer_schedule, minimal_board())
        assert memory_map.validate() == []

    def test_reuse_never_worse_than_naive(self, equalizer_schedule):
        arch = minimal_board()
        with_reuse = allocate_memory(equalizer_schedule, arch, reuse=True)
        naive = allocate_memory(equalizer_schedule, arch, reuse=False)
        assert with_reuse.words_used <= naive.words_used

    def test_reuse_actually_shares_addresses(self, equalizer_schedule):
        # the schedule serializes transfers, so disjoint lifetimes exist
        arch = minimal_board()
        with_reuse = allocate_memory(equalizer_schedule, arch, reuse=True)
        naive = allocate_memory(equalizer_schedule, arch, reuse=False)
        assert with_reuse.words_used < naive.words_used

    def test_too_small_memory_raises(self, equalizer_schedule):
        tiny = TargetArchitecture(
            "tiny_board",
            processors=(dsp56001("dsp0"),),
            fpgas=(xc4005("fpga0"),),
            memory=MemoryDevice("sram", 8, base_address=0x1000,
                                word_bytes=2),
            bus=Bus("sysbus", width_bits=16, clock_hz=10e6,
                    cycles_per_word=1),
        )
        with pytest.raises(MemoryError):
            allocate_memory(equalizer_schedule, tiny)

    def test_missing_cell_lookup_raises(self, equalizer_schedule):
        memory_map = allocate_memory(equalizer_schedule, minimal_board())
        with pytest.raises(MemoryError):
            memory_map.cell("not_an_edge")

    def test_memory_map_text(self, equalizer_schedule):
        memory_map = allocate_memory(equalizer_schedule, minimal_board())
        text = memory_map_text(memory_map)
        assert "memory map" in text
        assert "0x" in text

    def test_deterministic(self, equalizer_schedule):
        a = allocate_memory(equalizer_schedule, minimal_board())
        b = allocate_memory(equalizer_schedule, minimal_board())
        assert {k: (c.address, c.words) for k, c in a.cells.items()} == \
            {k: (c.address, c.words) for k, c in b.cells.items()}


class TestAllocationPropertyBased:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=8, max_value=32),
           st.integers(min_value=0, max_value=500),
           st.integers(min_value=0, max_value=500))
    def test_random_allocations_valid_and_reuse_wins(self, n, gseed, pseed):
        graph = random_task_graph(n, seed=gseed)
        arch = cool_board()
        rng = random.Random(pseed)
        mapping = {node.name: rng.choice(arch.resource_names)
                   for node in graph.internal_nodes()}
        partition = from_mapping(graph, mapping, arch.fpga_names,
                                 arch.processor_names)
        schedule = list_schedule(partition, CostModel(graph, arch))
        with_reuse = allocate_memory(schedule, arch, reuse=True)
        naive = allocate_memory(schedule, arch, reuse=False)
        assert with_reuse.validate() == []
        assert naive.validate() == []
        assert with_reuse.words_used <= naive.words_used
        assert set(with_reuse.cells) == {e.name for e in
                                         partition.cut_edges()}
