"""Tests for the kernel weak-bisimulation check (repro.automata.bisim).

Small hand-built step automata: transitions carry an input letter
(conditions) and the outputs of that step (actions).  The checks must
absorb timing skew (one side fires atomically what the other spreads
over cycles), respect hiding, and report shortest counterexamples.
"""

import pytest

from repro.automata import (AutomatonBuilder, BisimResult,
                            distinguishing_trace, weak_bisimilar)


def atomic_machine():
    """?go then x and y in one step, then quiescent."""
    b = AutomatonBuilder("atomic")
    b.add_state("s0")
    b.add_state("s1")
    b.add_transition("s0", "s0")                     # idle self-loop
    b.add_transition("s0", "s1", conditions=("go",),
                     actions=("x", "y"))
    b.add_transition("s1", "s1")
    return b.build()


def staged_machine(order=("x", "y")):
    """?go then the same outputs spread over separate silent cycles."""
    b = AutomatonBuilder("staged")
    b.add_state("t0")
    b.add_state("t1")
    b.add_state("t2")
    b.add_transition("t0", "t0")
    b.add_transition("t0", "t1", conditions=("go",),
                     actions=(order[0],))
    b.add_transition("t1", "t2", actions=(order[1],))
    b.add_transition("t2", "t2")
    return b.build()


class TestWeakBisimilar:
    def test_timing_skew_is_invisible(self):
        result = weak_bisimilar(atomic_machine(), staged_machine())
        assert result.bisimilar
        assert result.counterexample == ()
        assert result.explain() == "weakly bisimilar"

    def test_output_order_is_observable(self):
        # same multiset, reversed emission order across cycles
        result = weak_bisimilar(atomic_machine(),
                                staged_machine(order=("y", "x")))
        assert not result.bisimilar
        assert result.counterexample == ("?go", "!x")
        assert result.missing_side == "right"
        assert "only in the left" in result.explain()

    def test_hiding_restores_equivalence(self):
        skewed = staged_machine(order=("y", "x"))
        assert weak_bisimilar(atomic_machine(), skewed,
                              observable=("x",)).bisimilar
        assert weak_bisimilar(atomic_machine(), skewed,
                              observable=("y",)).bisimilar
        assert not weak_bisimilar(atomic_machine(), skewed).bisimilar

    def test_hidden_everything_is_trivially_bisimilar(self):
        result = weak_bisimilar(atomic_machine(),
                                staged_machine(order=("y", "x")),
                                observable=())
        assert result.bisimilar
        assert result.observable == ()

    def test_missing_input_edge_detected(self):
        b = AutomatonBuilder("deaf")
        b.add_state("u0")
        b.add_transition("u0", "u0")
        result = weak_bisimilar(atomic_machine(), b.build())
        assert not result.bisimilar
        assert result.counterexample == ("?go",)
        assert result.missing_side == "right"

    def test_result_shape(self):
        result = weak_bisimilar(atomic_machine(), staged_machine())
        assert isinstance(result, BisimResult)
        assert result.left_states >= 2
        assert result.right_states >= 3
        assert result.blocks >= 1
        assert result.observable is None


class TestDistinguishingTrace:
    def test_agreement_returns_none(self):
        assert distinguishing_trace(atomic_machine(),
                                    staged_machine()) is None

    def test_shortest_trace_and_side(self):
        trace, missing = distinguishing_trace(
            staged_machine(order=("y", "x")), atomic_machine())
        assert trace == ("?go", "!x")
        assert missing == "left"

    def test_respects_hiding(self):
        assert distinguishing_trace(
            atomic_machine(), staged_machine(order=("y", "x")),
            observable=("x",)) is None


class TestSymmetry:
    @pytest.mark.parametrize("swap", [False, True])
    def test_verdict_is_symmetric(self, swap):
        a, b = atomic_machine(), staged_machine(order=("y", "x"))
        if swap:
            a, b = b, a
        result = weak_bisimilar(a, b)
        assert not result.bisimilar
        # the missing side tracks the argument order
        assert result.missing_side == ("left" if swap else "right")


def chain_machine(length, label="ping", tail_actions=("z",)):
    """?label, then a long silent walk, then one observable action."""
    b = AutomatonBuilder(f"chain{length}")
    b.add_state("c0")
    b.add_transition("c0", "c0")
    for i in range(1, length + 1):
        b.add_state(f"c{i}")
    b.add_transition("c0", "c1", conditions=(label,))
    for i in range(1, length):
        b.add_transition(f"c{i}", f"c{i + 1}")     # deterministic τ-chain
    b.add_transition(f"c{length}", f"c{length}", actions=tail_actions)
    return b.build()


class TestTauChainCompression:
    def test_long_chains_still_bisimilar(self):
        # a 40-state silent walk vs a 2-state one: weakly equal
        result = weak_bisimilar(chain_machine(40), chain_machine(2))
        assert result.bisimilar
        # compression strips the interior of the walk before saturation
        assert result.left_states < 10

    def test_negative_verdict_survives_compression(self):
        result = weak_bisimilar(chain_machine(40, tail_actions=("z",)),
                                chain_machine(40, tail_actions=("w",)))
        assert not result.bisimilar
        # shortest distinguishing trace; either side's tail action leads
        assert result.counterexample in (("?ping", "!z"), ("?ping", "!w"))

    def test_tau_cycle_collapses(self):
        b = AutomatonBuilder("cycle")
        for name in ("a", "b", "c"):
            b.add_state(name)
        b.add_transition("a", "b")   # a -> b -> c -> a: pure τ-cycle
        b.add_transition("b", "c")
        b.add_transition("c", "a")
        cyclic = b.build()
        d = AutomatonBuilder("dead")
        d.add_state("only")
        d.add_transition("only", "only")
        result = weak_bisimilar(cyclic, d.build())
        assert result.bisimilar   # both are silent-divergent systems

    def test_compression_keeps_initial_behaviour(self):
        # initial state is itself inside a chain
        b = AutomatonBuilder("entry")
        for name in ("e0", "e1", "e2"):
            b.add_state(name)
        b.add_transition("e0", "e1")                 # initial is a chain state
        b.add_transition("e1", "e2", actions=("x",))
        b.add_transition("e2", "e2")
        lhs = b.build()
        c = AutomatonBuilder("direct")
        c.add_state("d0")
        c.add_state("d1")
        c.add_transition("d0", "d1", actions=("x",))
        c.add_transition("d1", "d1")
        result = weak_bisimilar(lhs, c.build())
        assert result.bisimilar


class TestGuardedObservation:
    def test_parallel_guarded_edges_merge_by_disjunction(self):
        def one_sided(split):
            b = AutomatonBuilder("g")
            b.add_state("s0")
            b.add_state("s1")
            b.add_transition("s0", "s0")
            if split:
                # two parallel edges a&!b / b&!a ...
                b.add_transition("s0", "s1", actions=("x",),
                                 guard_cover=[(("a", True), ("b", False))])
                b.add_transition("s0", "s1", actions=("x",),
                                 guard_cover=[(("a", False), ("b", True))])
            else:
                # ... vs their disjunction as one edge
                b.add_transition("s0", "s1", actions=("x",),
                                 guard_cover=[(("a", True), ("b", False)),
                                              (("a", False), ("b", True))])
            b.add_transition("s1", "s1")
            return b.build()

        result = weak_bisimilar(one_sided(True), one_sided(False))
        assert result.bisimilar

    def test_labels_canonical_across_covers_and_interning_orders(self):
        # same guard function, different stored cover (one carries a
        # redundant subsumed cube) and different interning order: the
        # observation labels must still line up
        def machine(redundant, flip):
            b = AutomatonBuilder("canon")
            b.add_state("s0")
            b.add_state("s1")
            b.add_transition("s0", "s0")
            if flip:  # intern b before a (different variable order)
                b.add_transition("s1", "s1", conditions=("b", "a"))
            cover = [(("a", True), ("b", False))]
            if redundant:
                cover.append((("a", True), ("b", False), ("c", True)))
            b.add_transition("s0", "s1", actions=("x",), guard_cover=cover)
            if not flip:
                b.add_transition("s1", "s1", conditions=("b", "a"))
            return b.build()

        result = weak_bisimilar(machine(True, flip=False),
                                machine(False, flip=True))
        assert result.bisimilar, result.counterexample

    def test_labels_canonical_on_wide_support_guards(self):
        # 12 support variables: canonicalization must not fall back to
        # the stored (non-canonical) cover above some support cap
        signals = [f"v{index:02d}" for index in range(12)]
        wide = tuple((signal, True) for signal in signals)

        def machine(redundant):
            b = AutomatonBuilder("wide")
            b.add_state("s0")
            b.add_state("s1")
            b.add_transition("s0", "s0")
            cover = [wide[:6] + ((signals[6], False),),
                     wide[6:] + ((signals[0], False),)]
            if redundant:
                cover.append(wide[:6] + ((signals[6], False),
                                         (signals[7], True)))
            b.add_transition("s0", "s1", actions=("x",), guard_cover=cover)
            b.add_transition("s1", "s1")
            return b.build()

        result = weak_bisimilar(machine(True), machine(False))
        assert result.bisimilar, result.counterexample

    def test_subsumed_guarded_edge_is_skipped(self):
        def machine(extra_subsumed):
            b = AutomatonBuilder("sub")
            b.add_state("s0")
            b.add_state("s1")
            b.add_transition("s0", "s0")
            b.add_transition("s0", "s1", actions=("x",),
                             guard_cover=[(("a", True),), (("b", True),)])
            if extra_subsumed:
                # a&!b implies a|b: adds nothing observable (stays
                # guard-backed thanks to the negated literal)
                b.add_transition("s0", "s1", actions=("x",),
                                 guard_cover=[(("a", True), ("b", False))])
            b.add_transition("s1", "s1")
            return b.build()

        result = weak_bisimilar(machine(True), machine(False))
        assert result.bisimilar
