"""Tests for the kernel weak-bisimulation check (repro.automata.bisim).

Small hand-built step automata: transitions carry an input letter
(conditions) and the outputs of that step (actions).  The checks must
absorb timing skew (one side fires atomically what the other spreads
over cycles), respect hiding, and report shortest counterexamples.
"""

import pytest

from repro.automata import (AutomatonBuilder, BisimResult,
                            distinguishing_trace, weak_bisimilar)


def atomic_machine():
    """?go then x and y in one step, then quiescent."""
    b = AutomatonBuilder("atomic")
    b.add_state("s0")
    b.add_state("s1")
    b.add_transition("s0", "s0")                     # idle self-loop
    b.add_transition("s0", "s1", conditions=("go",),
                     actions=("x", "y"))
    b.add_transition("s1", "s1")
    return b.build()


def staged_machine(order=("x", "y")):
    """?go then the same outputs spread over separate silent cycles."""
    b = AutomatonBuilder("staged")
    b.add_state("t0")
    b.add_state("t1")
    b.add_state("t2")
    b.add_transition("t0", "t0")
    b.add_transition("t0", "t1", conditions=("go",),
                     actions=(order[0],))
    b.add_transition("t1", "t2", actions=(order[1],))
    b.add_transition("t2", "t2")
    return b.build()


class TestWeakBisimilar:
    def test_timing_skew_is_invisible(self):
        result = weak_bisimilar(atomic_machine(), staged_machine())
        assert result.bisimilar
        assert result.counterexample == ()
        assert result.explain() == "weakly bisimilar"

    def test_output_order_is_observable(self):
        # same multiset, reversed emission order across cycles
        result = weak_bisimilar(atomic_machine(),
                                staged_machine(order=("y", "x")))
        assert not result.bisimilar
        assert result.counterexample == ("?go", "!x")
        assert result.missing_side == "right"
        assert "only in the left" in result.explain()

    def test_hiding_restores_equivalence(self):
        skewed = staged_machine(order=("y", "x"))
        assert weak_bisimilar(atomic_machine(), skewed,
                              observable=("x",)).bisimilar
        assert weak_bisimilar(atomic_machine(), skewed,
                              observable=("y",)).bisimilar
        assert not weak_bisimilar(atomic_machine(), skewed).bisimilar

    def test_hidden_everything_is_trivially_bisimilar(self):
        result = weak_bisimilar(atomic_machine(),
                                staged_machine(order=("y", "x")),
                                observable=())
        assert result.bisimilar
        assert result.observable == ()

    def test_missing_input_edge_detected(self):
        b = AutomatonBuilder("deaf")
        b.add_state("u0")
        b.add_transition("u0", "u0")
        result = weak_bisimilar(atomic_machine(), b.build())
        assert not result.bisimilar
        assert result.counterexample == ("?go",)
        assert result.missing_side == "right"

    def test_result_shape(self):
        result = weak_bisimilar(atomic_machine(), staged_machine())
        assert isinstance(result, BisimResult)
        assert result.left_states >= 2
        assert result.right_states >= 3
        assert result.blocks >= 1
        assert result.observable is None


class TestDistinguishingTrace:
    def test_agreement_returns_none(self):
        assert distinguishing_trace(atomic_machine(),
                                    staged_machine()) is None

    def test_shortest_trace_and_side(self):
        trace, missing = distinguishing_trace(
            staged_machine(order=("y", "x")), atomic_machine())
        assert trace == ("?go", "!x")
        assert missing == "left"

    def test_respects_hiding(self):
        assert distinguishing_trace(
            atomic_machine(), staged_machine(order=("y", "x")),
            observable=("x",)) is None


class TestSymmetry:
    @pytest.mark.parametrize("swap", [False, True])
    def test_verdict_is_symmetric(self, swap):
        a, b = atomic_machine(), staged_machine(order=("y", "x"))
        if swap:
            a, b = b, a
        result = weak_bisimilar(a, b)
        assert not result.bisimilar
        # the missing side tracks the argument order
        assert result.missing_side == ("left" if swap else "right")
