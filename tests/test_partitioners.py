"""Unit + integration tests for the partitioning algorithms."""

import pytest

from repro.apps import four_band_equalizer, fuzzy_controller, random_task_graph
from repro.partition import (GaConfig, GeneticPartitioner, GreedyPartitioner,
                             MilpError, MilpHeuristicPartitioner,
                             MilpPartitioner, PartitioningProblem,
                             area_usage, build_formulation,
                             check_feasibility, evaluate_mapping,
                             memory_words_needed, solve_bnb, solve_milp)
from repro.graph import all_software
from repro.platform import cool_board, minimal_board
from repro.schedule import validate_schedule

ALL_PARTITIONERS = [
    MilpPartitioner(backend="scipy"),
    MilpPartitioner(backend="bnb"),
    GreedyPartitioner(),
    MilpHeuristicPartitioner(),
    GeneticPartitioner(GaConfig(population=16, generations=12, seed=3)),
]


@pytest.fixture(scope="module")
def equalizer_problem():
    return PartitioningProblem(four_band_equalizer(words=8), minimal_board())


@pytest.fixture(scope="module")
def fuzzy_problem():
    return PartitioningProblem(fuzzy_controller(), cool_board())


class TestFeasibility:
    def test_pure_software_uses_no_area(self, equalizer_problem):
        p = equalizer_problem
        part = all_software(p.graph, "dsp0", hw_resources=p.arch.fpga_names)
        assert area_usage(part, p.model) == {"fpga0": 0}
        report = check_feasibility(part, p.model)
        assert report.area_ok and report.feasible

    def test_memory_words_scale_with_cut(self, equalizer_problem):
        p = equalizer_problem
        sw = all_software(p.graph, "dsp0", hw_resources=p.arch.fpga_names)
        mapping = {n.name: "dsp0" for n in p.graph.internal_nodes()}
        mapping["band0"] = "fpga0"
        mixed = p.make_partition(mapping)
        assert memory_words_needed(mixed, p.arch) > \
            memory_words_needed(sw, p.arch)

    def test_report_problems_listed(self, equalizer_problem):
        p = equalizer_problem
        part = all_software(p.graph, "dsp0", hw_resources=p.arch.fpga_names)
        report = check_feasibility(part, p.model, makespan=100, deadline=10)
        assert not report.feasible
        assert any("deadline" in s for s in report.problems())


class TestFormulation:
    def test_variable_counts(self, equalizer_problem):
        form, idx = build_formulation(equalizer_problem, "min_time")
        n_nodes = len(equalizer_problem.graph.internal_nodes())
        n_res = len(equalizer_problem.resources)
        internal_edges = [e for e in equalizer_problem.graph.edges
                          if not equalizer_problem.graph.node(e.src).is_io
                          and not equalizer_problem.graph.node(e.dst).is_io]
        assert form.n_binaries == n_nodes * n_res
        assert form.n_vars == n_nodes * n_res + len(internal_edges) + 1

    def test_min_area_requires_deadline(self, equalizer_problem):
        with pytest.raises(MilpError):
            build_formulation(equalizer_problem, "min_area", deadline=None)

    def test_unknown_objective_rejected(self, equalizer_problem):
        with pytest.raises(ValueError):
            build_formulation(equalizer_problem, "min_everything")

    def test_assignment_constraints_one_per_node(self, equalizer_problem):
        form, _ = build_formulation(equalizer_problem, "min_time")
        assert len(form.a_eq) == len(equalizer_problem.graph.internal_nodes())
        assert all(rhs == 1.0 for rhs in form.b_eq)


class TestBackendsAgree:
    def test_scipy_and_bnb_same_objective(self):
        problem = PartitioningProblem(four_band_equalizer(words=4),
                                      minimal_board())
        form, _ = build_formulation(problem, "min_time")
        xs = solve_milp(form)
        xb = solve_bnb(form)
        assert xs is not None and xb is not None
        obj_s = sum(c * v for c, v in zip(form.c, xs))
        obj_b = sum(c * v for c, v in zip(form.c, xb))
        assert obj_b == pytest.approx(obj_s, rel=1e-6, abs=1e-6)

    def test_bnb_finds_integral_solutions(self):
        problem = PartitioningProblem(four_band_equalizer(words=4),
                                      minimal_board())
        form, _ = build_formulation(problem, "min_time")
        x = solve_bnb(form)
        assert x is not None
        for i, flag in enumerate(form.integrality):
            if flag:
                assert x[i] == pytest.approx(round(x[i]), abs=1e-6)

    def test_infeasible_detected_by_both(self, equalizer_problem):
        form, _ = build_formulation(equalizer_problem, "min_area", deadline=1)
        assert solve_milp(form) is None
        assert solve_bnb(form) is None


class TestPartitioners:
    @pytest.mark.parametrize("partitioner", ALL_PARTITIONERS,
                             ids=lambda p: p.name)
    def test_valid_result_on_equalizer(self, partitioner, equalizer_problem):
        result = partitioner.partition(equalizer_problem)
        assert validate_schedule(result.schedule) == []
        assert result.feasibility.area_ok
        assert result.feasibility.memory_ok
        summary = result.summary()
        assert summary["algorithm"] == partitioner.name
        assert summary["makespan"] == result.makespan

    @pytest.mark.parametrize("partitioner", ALL_PARTITIONERS,
                             ids=lambda p: p.name)
    def test_beats_pure_software_on_equalizer(self, partitioner,
                                              equalizer_problem):
        p = equalizer_problem
        sw = all_software(p.graph, "dsp0", hw_resources=p.arch.fpga_names)
        _, sw_schedule, _ = evaluate_mapping(
            p, {n.name: "dsp0" for n in p.graph.internal_nodes()})
        result = partitioner.partition(p)
        assert result.makespan <= sw_schedule.makespan

    def test_milp_min_area_meets_deadline(self):
        graph = four_band_equalizer(words=8)
        arch = minimal_board()
        free = PartitioningProblem(graph, arch)
        best = MilpPartitioner().partition(free).makespan
        sw_time = evaluate_mapping(
            free, {n.name: "dsp0" for n in graph.internal_nodes()}
        )[1].makespan
        deadline = (best + sw_time) // 2
        problem = PartitioningProblem(graph, arch, deadline=deadline)
        result = MilpPartitioner().partition(problem)
        assert result.makespan <= deadline
        assert result.feasibility.feasible
        # area-minimizing: should not use more hardware than the
        # unconstrained makespan-minimizer
        assert result.hw_area <= MilpPartitioner().partition(free).hw_area

    def test_milp_impossible_deadline_raises(self, equalizer_problem):
        problem = PartitioningProblem(equalizer_problem.graph,
                                      equalizer_problem.arch, deadline=1)
        with pytest.raises(MilpError):
            MilpPartitioner().partition(problem)

    def test_greedy_respects_area(self):
        problem = PartitioningProblem(fuzzy_controller(), cool_board())
        result = GreedyPartitioner().partition(problem)
        for fpga in problem.arch.fpgas:
            assert result.feasibility.area[fpga.name] <= fpga.clb_capacity

    def test_genetic_deterministic_in_seed(self, equalizer_problem):
        a = GeneticPartitioner(GaConfig(population=10, generations=6,
                                        seed=11)).partition(equalizer_problem)
        b = GeneticPartitioner(GaConfig(population=10, generations=6,
                                        seed=11)).partition(equalizer_problem)
        assert a.partition.mapping == b.partition.mapping

    def test_genetic_config_overrides(self):
        ga = GeneticPartitioner(population=5, generations=2, seed=1)
        assert ga.config.population == 5
        assert ga.config.generations == 2

    def test_fuzzy_fits_paper_board(self, fuzzy_problem):
        # the case study: 31 nodes must fit DSP + 2x196 CLBs + 64 kB
        result = GreedyPartitioner().partition(fuzzy_problem)
        assert result.feasibility.feasible
        assert validate_schedule(result.schedule) == []

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError):
            MilpPartitioner(backend="quantum")


class TestPartitionersOnRandomGraphs:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_all_partitioners_valid(self, seed):
        graph = random_task_graph(16, seed=seed)
        problem = PartitioningProblem(graph, cool_board())
        for partitioner in (MilpPartitioner(),
                            GreedyPartitioner(),
                            GeneticPartitioner(GaConfig(population=10,
                                                        generations=6,
                                                        seed=seed))):
            result = partitioner.partition(problem)
            assert validate_schedule(result.schedule) == []
            assert result.feasibility.area_ok
