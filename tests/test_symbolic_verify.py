"""Unit tests for the symbolic verification tier's building blocks.

Covers the relational algebra over the BDD engine
(:mod:`repro.symbolic.relation`), the lazily interned step systems and
the determinized trace-equivalence fixpoint
(:mod:`repro.automata.symbolic`) on toy systems small enough to check
by hand -- including the concrete distinguishing-trace counterexample
and the relational image-iteration cross-check.
"""

import itertools
import random

import pytest

from repro.automata import (AutomataError, ClassVerdict, LazyStepSystem,
                            ProductEnvironment, reachable_set_summary,
                            symbolic_trace_equivalence)
from repro.symbolic import (FALSE, TRUE, BddEngine, BddError,
                            VariablePairing, and_exists, exists, forall,
                            reachable_states, relational_image, rename)


def random_node(engine, rng, nvars, density=0.45):
    rows = [row for row in itertools.product((0, 1), repeat=nvars)
            if rng.random() < density]
    return engine.disj(
        engine.cube(tuple((var, bool(bit)) for var, bit in enumerate(row)))
        for row in rows)


class TestQuantification:
    def test_exists_drops_the_variable(self):
        e = BddEngine()
        f = e.and_(e.var(0), e.or_(e.var(1), e.var(2)))
        g = exists(e, f, (1,))
        assert g == e.var(0)  # exists b. a and (b or c) == a
        assert 1 not in e.support(g)

    def test_exists_matches_cofactor_disjunction(self):
        e = BddEngine()
        rng = random.Random(11)
        for _ in range(25):
            f = random_node(e, rng, 4)
            var = rng.randrange(4)
            expected = e.or_(e.cofactor(f, var, False),
                             e.cofactor(f, var, True))
            assert exists(e, f, (var,)) == expected

    def test_forall_is_the_dual(self):
        e = BddEngine()
        rng = random.Random(12)
        for _ in range(25):
            f = random_node(e, rng, 4)
            var = rng.randrange(4)
            expected = e.and_(e.cofactor(f, var, False),
                              e.cofactor(f, var, True))
            assert forall(e, f, (var,)) == expected

    def test_empty_variable_set_is_identity(self):
        e = BddEngine()
        f = e.xor(e.var(0), e.var(3))
        assert exists(e, f, ()) == f
        assert forall(e, f, ()) == f


class TestRename:
    def test_block_swap_round_trips(self):
        e = BddEngine()
        f = e.and_(e.var(0), e.not_(e.var(2)))
        shifted = rename(e, f, {0: 1, 2: 3})
        assert shifted == e.and_(e.var(1), e.not_(e.var(3)))
        assert rename(e, shifted, {1: 0, 3: 2}) == f

    def test_non_monotone_substitution_is_sound(self):
        # the ite-composition must not depend on the substitution
        # preserving the variable order
        e = BddEngine()
        f = e.and_(e.var(0), e.or_(e.var(1), e.var(2)))
        swapped = rename(e, f, {0: 2, 2: 0})
        assert swapped == e.and_(e.var(2), e.or_(e.var(1), e.var(0)))

    def test_non_injective_mapping_rejected(self):
        e = BddEngine()
        f = e.and_(e.var(0), e.var(1))
        with pytest.raises(BddError):
            rename(e, f, {0: 5, 1: 5})

    def test_collision_with_unrenamed_support_rejected(self):
        e = BddEngine()
        f = e.and_(e.var(0), e.var(1))
        with pytest.raises(BddError):
            rename(e, f, {0: 1})

    def test_identity_mapping_is_noop(self):
        e = BddEngine()
        f = e.or_(e.var(0), e.var(4))
        assert rename(e, f, {0: 0, 7: 7}) == f


class TestAndExists:
    def test_matches_unfused_relational_product(self):
        e = BddEngine()
        rng = random.Random(13)
        for _ in range(30):
            f = random_node(e, rng, 5)
            g = random_node(e, rng, 5)
            variables = tuple(v for v in range(5) if rng.random() < 0.5)
            assert and_exists(e, f, g, variables) == \
                exists(e, e.and_(f, g), variables)

    def test_no_variables_is_plain_conjunction(self):
        e = BddEngine()
        f, g = e.var(0), e.not_(e.var(0))
        assert and_exists(e, f, g, ()) == FALSE


class TestVariablePairing:
    def test_interleaved_layout(self):
        pairing = VariablePairing(3)
        assert pairing.current_vars == (0, 2, 4)
        assert pairing.next_vars == (1, 3, 5)
        assert pairing.current(2) == 4
        assert pairing.next(2) == 5

    def test_bit_bounds_and_size_validated(self):
        with pytest.raises(BddError):
            VariablePairing(0)
        with pytest.raises(BddError):
            VariablePairing(2).current(2)

    def test_prime_unprime_round_trip(self):
        e = BddEngine()
        pairing = VariablePairing(2)
        cube = pairing.state_cube(e, 2)
        primed = pairing.prime(e, cube)
        assert primed == pairing.state_cube(e, 2, primed=True)
        assert pairing.unprime(e, primed) == cube

    def test_state_cube_encodes_the_index(self):
        e = BddEngine()
        pairing = VariablePairing(3)
        for index in range(8):
            cube = pairing.state_cube(e, index)
            bits = {pairing.current(b) for b in range(3) if index >> b & 1}
            for candidate in range(8):
                assignment = {pairing.current(b) for b in range(3)
                              if candidate >> b & 1}
                assert e.eval(cube, assignment) == (assignment == bits)


class TestImageIteration:
    def _ring(self, e, pairing, n):
        """Relation of the n-cycle 0 -> 1 -> ... -> n-1 -> 0."""
        return e.disj(
            e.and_(pairing.state_cube(e, i),
                   pairing.state_cube(e, (i + 1) % n, primed=True))
            for i in range(n))

    def test_single_image_step(self):
        e = BddEngine()
        pairing = VariablePairing(2)
        ring = self._ring(e, pairing, 4)
        image = relational_image(e, pairing.state_cube(e, 1), [ring],
                                 pairing)
        assert image == pairing.state_cube(e, 2)

    def test_disjunctive_and_conjunctive_agree(self):
        e = BddEngine()
        pairing = VariablePairing(2)
        ring = self._ring(e, pairing, 4)
        source = e.or_(pairing.state_cube(e, 0), pairing.state_cube(e, 2))
        assert relational_image(e, source, [ring], pairing,
                                disjunctive=True) == \
            relational_image(e, source, [ring], pairing)

    def test_conjunctive_partitions_constrain_jointly(self):
        # two one-bit component relations: bit 0 flips, bit 1 holds --
        # the conjunctive image must satisfy both partitions at once
        e = BddEngine()
        pairing = VariablePairing(2)
        flip0 = e.xor(e.var(pairing.current(0)), e.var(pairing.next(0)))
        hold1 = e.not_(e.xor(e.var(pairing.current(1)),
                             e.var(pairing.next(1))))
        image = relational_image(e, pairing.state_cube(e, 2),
                                 [flip0, hold1], pairing)
        assert image == pairing.state_cube(e, 3)

    def test_reachable_states_closes_the_ring(self):
        e = BddEngine()
        pairing = VariablePairing(2)
        ring = self._ring(e, pairing, 4)
        reached, iterations = reachable_states(
            e, pairing.state_cube(e, 0), [ring], pairing,
            disjunctive=True)
        assert reached == e.disj(pairing.state_cube(e, i)
                                 for i in range(4))
        assert iterations == 4  # 3 discovery rounds + 1 empty frontier

    def test_unreachable_states_stay_out(self):
        e = BddEngine()
        pairing = VariablePairing(2)
        # 0 -> 1 only; 2 and 3 are disconnected
        chain = e.and_(pairing.state_cube(e, 0),
                       pairing.state_cube(e, 1, primed=True))
        reached, _ = reachable_states(e, pairing.state_cube(e, 0),
                                      [chain], pairing, disjunctive=True)
        assert reached == e.or_(pairing.state_cube(e, 0),
                                pairing.state_cube(e, 1))


# ----------------------------------------------------------------------
# toy step systems for the trace-equivalence fixpoint
# ----------------------------------------------------------------------
class _OfferEnv(ProductEnvironment):
    """Offer silence everywhere plus per-config extra letters."""

    def __init__(self, offers):
        super().__init__()
        self._offers = {config: tuple(frozenset(letter)
                                      for letter in letters)
                        for config, letters in offers.items()}

    def letters(self, env_state, config):
        yield frozenset()
        yield from self._offers.get(config, ())


def _table_system(name, table, offers):
    """A LazyStepSystem from ``(config, letter) -> (succ, actions)``.

    Unlisted (config, letter) pairs are silent self-loops.
    """
    def step(config, letter):
        return table.get((config, frozenset(letter)), (config, ()))
    return LazyStepSystem(name, 0, step, _OfferEnv(offers))


GO = frozenset({"go"})
SILENT = frozenset()


def _ping_fused():
    """Emits ack in the same step that consumes go."""
    return _table_system("fused", {(0, GO): (1, ("ack",)),
                                   (1, SILENT): (0, ())},
                         {0: (GO,)})


def _ping_staged():
    """Consumes go first, emits ack one silent step later."""
    return _table_system("staged", {(0, GO): (1, ()),
                                    (1, SILENT): (2, ("ack",)),
                                    (2, SILENT): (0, ())},
                         {0: (GO,)})


def _ping_tampered():
    """Consumes go but never emits the ack."""
    return _table_system("tampered", {(0, GO): (1, ()),
                                      (1, SILENT): (0, ())},
                         {0: (GO,)})


CLASSES = [("ack", frozenset({"ack"}))]


class TestLazyStepSystem:
    def test_interning_is_dense_and_shared(self):
        system = _ping_staged()
        assert len(system) == 1  # only the initial state before rows()
        assert system.expand_all() == 3
        assert sorted(system.key_of(s)[0] for s in range(3)) == [0, 1, 2]
        # letters and action tuples are interned to shared objects
        letters = [system.letter_of(i) for i in range(system.n_letters)]
        assert SILENT in letters and GO in letters
        acks = [actions for _s, _l, actions, _succ in system.iter_rows()
                if actions]
        assert all(a is acks[0] for a in acks)

    def test_rows_are_stable_and_deterministic(self):
        system = _ping_staged()
        system.expand_all()
        assert system.rows(0) is system.rows(0)
        again = _ping_staged()
        again.expand_all()
        assert [system.rows(s) for s in range(len(system))] == \
            [again.rows(s) for s in range(len(again))]


class TestReachableSetSummary:
    def test_relational_check_agrees_with_enumeration(self):
        engine = BddEngine()
        system = _ping_staged()
        system.expand_all()
        node, size, iterations = reachable_set_summary(
            engine, system, relational_check=True)
        assert node not in (FALSE,)
        assert size >= 1
        assert iterations >= 3  # three states discovered one per round

    def test_saturated_block_is_true(self):
        # 4 states on 2 bits: the interval predicate {i : i < 4} is
        # the whole block, whose reduced BDD is the TRUE terminal
        engine = BddEngine()
        system = _table_system("square", {(0, GO): (1, ()),
                                          (1, GO): (2, ()),
                                          (2, GO): (3, ()),
                                          (3, GO): (0, ())},
                               {0: (GO,), 1: (GO,), 2: (GO,), 3: (GO,)})
        system.expand_all()
        node, size, _ = reachable_set_summary(engine, system)
        assert node == TRUE
        assert size == engine.size(TRUE)


class TestSymbolicTraceEquivalence:
    def test_timing_skew_is_weakly_invisible(self):
        result = symbolic_trace_equivalence(_ping_fused(), _ping_staged(),
                                            CLASSES)
        assert result.equivalent
        assert result.left_states == 2
        assert result.right_states == 3
        assert result.pairs_checked > 0
        assert result.bdd_stats["nodes"] >= 0

    def test_tampered_side_yields_shortest_trace(self):
        result = symbolic_trace_equivalence(_ping_fused(),
                                            _ping_tampered(), CLASSES)
        assert not result.equivalent
        verdict = result.verdicts[0]
        assert verdict.counterexample == ("?go", "!ack")
        assert verdict.missing_side == "right"
        assert "trace ?go !ack is possible only in the left one" in \
            verdict.explain("the left one", "the right one")

    def test_tamper_detected_from_the_other_side_too(self):
        result = symbolic_trace_equivalence(_ping_tampered(),
                                            _ping_fused(), CLASSES)
        verdict = result.verdicts[0]
        assert not verdict.equivalent
        assert verdict.missing_side == "left"

    def test_relational_check_runs_per_system(self):
        result = symbolic_trace_equivalence(_ping_fused(), _ping_staged(),
                                            CLASSES, relational_check=True)
        assert result.equivalent
        assert result.image_iterations > 0
        assert len(result.bdd_stats["reachable_set_nodes"]) == 2

    def test_fixpoint_safety_valve(self, monkeypatch):
        import repro.automata.symbolic as symbolic
        monkeypatch.setattr(symbolic, "MAX_PAIR_FIXPOINT", 1)
        with pytest.raises(AutomataError):
            symbolic_trace_equivalence(_ping_fused(), _ping_staged(),
                                       CLASSES)

    def test_verdict_explain_for_equivalence(self):
        verdict = ClassVerdict("ack", True, 3)
        assert verdict.explain() == "weakly trace-equivalent"
