"""Tests for the DCT workload and streaming (multi-block) co-simulation."""

import math

import pytest

from repro.apps import dct_stage, four_band_equalizer
from repro.apps.dct import FACTOR_SCALE, dct_factor
from repro.graph import execute, to_signed, validate_graph
from repro.platform import minimal_board
from tests.test_cosim import build_system


class TestDctGraph:
    def test_valid_and_sized(self):
        g = dct_stage(points=8)
        assert validate_graph(g) == []
        # in + 8 selects + 8*8 gains + adder trees (7 per coeff) +
        # 8 shifts + pack + out
        assert len(g) == 1 + 8 + 64 + 56 + 8 + 1 + 1

    def test_coefficient_limit(self):
        g = dct_stage(points=8, coefficients=2)
        assert g.node("pack").words == 2

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            dct_stage(points=1)
        with pytest.raises(ValueError):
            dct_stage(points=8, coefficients=0)

    def test_factor_q6(self):
        assert dct_factor(0, 0, 8) == round(math.sqrt(1 / 8) * FACTOR_SCALE)

    def test_dc_coefficient_of_constant_block(self):
        g = dct_stage(points=8, coefficients=1)
        block = [10] * 8
        out = execute(g, {"block": block})["coeffs"]
        # DC of a constant block: 8 * 10 * sqrt(1/8) ~ 28.3
        expected = round(8 * 10 * math.sqrt(1 / 8))
        assert abs(to_signed(out[0], 16) - expected) <= 2

    def test_ac_of_constant_block_is_zero(self):
        g = dct_stage(points=8, coefficients=4)
        out = execute(g, {"block": [25] * 8})["coeffs"]
        for v in out[1:]:
            assert abs(to_signed(v, 16)) <= 2  # rounding noise only

    def test_matches_float_dct(self):
        g = dct_stage(points=8)
        block = [10, -20, 30, 5, 0, 12, -7, 40]
        out = execute(g, {"block": [b & 0xFFFF for b in block]})["coeffs"]
        for k in range(8):
            c = math.sqrt(1 / 8) if k == 0 else math.sqrt(2 / 8)
            ref = c * sum(b * math.cos(math.pi * (2 * n + 1) * k / 16)
                          for n, b in enumerate(block))
            assert abs(to_signed(out[k], 16) - ref) <= 6, k


class TestDctCosim:
    def test_dct_cosimulates_correctly_mixed(self):
        g = dct_stage(points=4)
        hw = {n.name for n in g.internal_nodes() if n.name.startswith("m0")}
        mapping = {n: "fpga0" for n in hw}
        sim, stimuli, _ = build_system(g, minimal_board(), mapping)
        result = sim.run()
        assert result.outputs["coeffs"] == execute(g, stimuli)["coeffs"]


class TestStreaming:
    def test_two_blocks_match_reference(self):
        g = four_band_equalizer(words=8)
        blocks = [{"x": [10, 0, 0, 0, 0, 0, 0, 0]},
                  {"x": [0, 20, 0, 0, 0, 0, 0, 5]}]
        sim, _, _ = build_system(g, minimal_board(),
                                 {"band0": "fpga0"},
                                 stimuli=blocks[0])
        results = sim.run_stream(blocks)
        assert len(results) == 2
        for block, result in zip(blocks, results):
            assert result.outputs["y"] == execute(g, block)["y"]

    def test_stream_cycles_monotone(self):
        g = four_band_equalizer(words=8)
        blocks = [{"x": [i] * 8} for i in (1, 2, 3)]
        sim, _, _ = build_system(g, minimal_board(), {},
                                 stimuli=blocks[0])
        results = sim.run_stream(blocks)
        assert results[0].cycles < results[1].cycles < results[2].cycles

    def test_restart_before_done_rejected(self):
        from repro.sim import SimError
        g = four_band_equalizer(words=8)
        sim, stimuli, _ = build_system(g, minimal_board(), {})
        with pytest.raises(SimError):
            sim.restart(stimuli)

    def test_ten_block_stream(self):
        g = four_band_equalizer(words=4)
        blocks = [{"x": [i, -i & 0xFFFF, 2 * i, 0]} for i in range(10)]
        sim, _, _ = build_system(g, minimal_board(),
                                 {"band1": "fpga0", "gain1": "fpga0"},
                                 stimuli=blocks[0])
        results = sim.run_stream(blocks)
        for block, result in zip(blocks, results):
            assert result.outputs["y"] == execute(g, block)["y"]
