"""Unit tests for repro.graph.validate."""

import pytest

from repro.graph import GraphError, TaskGraph, check_graph, validate_graph


def valid_graph() -> TaskGraph:
    g = TaskGraph("ok")
    g.add_node(name="in0", kind="input", words=2)
    g.add_node(name="n", kind="gain", params={"factor": 2}, words=2)
    g.add_node(name="out0", kind="output", words=2)
    g.add_edge("in0", "n")
    g.add_edge("n", "out0")
    return g


class TestValidate:
    def test_valid_graph_has_no_problems(self):
        assert validate_graph(valid_graph()) == []
        check_graph(valid_graph())  # must not raise

    def test_arity_mismatch_detected(self):
        g = valid_graph()
        g.add_node(name="adder", kind="add", words=2)
        g.add_edge("n", "adder")  # add needs 2 inputs, gets 1
        problems = validate_graph(g)
        assert any("adder" in p and "requires 2" in p for p in problems)

    def test_unknown_kind_detected(self):
        g = valid_graph()
        g.add_node(name="x", kind="warp_drive")
        problems = validate_graph(g)
        assert any("warp_drive" in p for p in problems)

    def test_missing_inputs_detected(self):
        g = TaskGraph()
        g.add_node(name="out0", kind="output", words=1)
        problems = validate_graph(g)
        assert any("no input nodes" in p for p in problems)

    def test_unreachable_node_detected(self):
        g = valid_graph()
        g.add_node(name="island", kind="generic")
        problems = validate_graph(g)
        assert any("island" in p and "unreachable" in p for p in problems)

    def test_noncontiguous_ports_detected(self):
        g = TaskGraph()
        g.add_node(name="in0", kind="input", words=1)
        g.add_node(name="in1", kind="input", words=1)
        g.add_node(name="a", kind="add", words=1)
        g.add_node(name="out0", kind="output", words=1)
        g.add_edge("in0", "a", dst_port=0)
        g.add_edge("in1", "a", dst_port=2)  # gap: port 1 missing
        g.add_edge("a", "out0")
        problems = validate_graph(g)
        assert any("not contiguous" in p for p in problems)

    def test_check_graph_raises_with_details(self):
        g = TaskGraph()
        g.add_node(name="out0", kind="output", words=1)
        with pytest.raises(GraphError) as exc:
            check_graph(g)
        assert "no input nodes" in str(exc.value)

    def test_output_with_successor_detected(self):
        g = valid_graph()
        g.add_node(name="tail", kind="copy", words=2)
        g.add_edge("out0", "tail")
        problems = validate_graph(g)
        assert any("out0" in p and "successors" in p for p in problems)
