"""Tests for VHDL/C/netlist code generation and the VHDL checker."""

import itertools
import random
import re

import pytest

from repro.apps import four_band_equalizer, fuzzy_controller
from repro.codegen import (check_vhdl, datapath_to_vhdl, fsm_to_vhdl,
                           generate_netlist, guard_literal_count,
                           netlist_text, software_to_c)
from repro.comm import refine_communication
from repro.controllers import (Fsm, synthesize_datapath_controller,
                               synthesize_io_controller,
                               synthesize_system_controller)
from repro.estimate import CostModel
from repro.graph import from_mapping
from repro.hls import synthesize_node
from repro.platform import cool_board, minimal_board, xc4005
from repro.schedule import list_schedule
from repro.stg import build_stg, minimize_stg


def implementation(graph, arch, hw_nodes=()):
    mapping = {}
    for node in graph.internal_nodes():
        mapping[node.name] = arch.fpga_names[0] if node.name in hw_nodes \
            else arch.processor_names[0]
    partition = from_mapping(graph, mapping, arch.fpga_names,
                             arch.processor_names)
    schedule = list_schedule(partition, CostModel(graph, arch))
    stg, _ = minimize_stg(build_stg(schedule))
    controller = synthesize_system_controller(stg)
    plan = refine_communication(schedule, arch)
    return partition, schedule, controller, plan


@pytest.fixture(scope="module")
def equalizer_impl():
    graph = four_band_equalizer(words=8)
    return (graph,) + implementation(graph, minimal_board(),
                                     {"band0", "gain0"})


class TestFsmVhdl:
    def test_all_controller_fsms_pass_checker(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        for fsm in controller.fsms:
            text = fsm_to_vhdl(fsm)
            assert check_vhdl(text) == [], f"{fsm.name} failed:\n{text}"

    def test_entity_and_ports_present(self, equalizer_impl):
        *_, controller, _ = equalizer_impl
        text = fsm_to_vhdl(controller.phase_fsm)
        assert "entity phase is" in text
        assert "clk : in std_logic" in text
        assert "rst : in std_logic" in text
        assert "system_done : out std_logic" in text

    def test_case_covers_all_states(self, equalizer_impl):
        *_, controller, _ = equalizer_impl
        seq = next(iter(controller.sequencers.values()))
        text = fsm_to_vhdl(seq)
        for state in seq.states:
            assert f"when st_{state} =>" in text

    def test_io_and_datapath_controllers_emit(self, equalizer_impl):
        graph, partition, *_ = equalizer_impl
        ioc = synthesize_io_controller(graph)
        assert check_vhdl(fsm_to_vhdl(ioc.fsm)) == []
        dpc = synthesize_datapath_controller(partition, "fpga0",
                                             {"band0": 60, "gain0": 25})
        assert check_vhdl(fsm_to_vhdl(dpc.fsm)) == []

    def test_encoding_comment(self, equalizer_impl):
        *_, controller, _ = equalizer_impl
        assert "encoding scheme: one_hot" in fsm_to_vhdl(
            controller.phase_fsm, encoding="one_hot")


class TestDatapathVhdl:
    def test_fir_datapath_passes_checker(self):
        from repro.graph import make_node
        node = make_node("band0", "fir", {"taps": (1, 2, 3)}, words=8)
        result = synthesize_node(node, xc4005())
        text = datapath_to_vhdl(result.rtl)
        assert check_vhdl(text) == [], text
        assert "entity band0 is" in text

    def test_micro_schedule_documented(self):
        from repro.graph import make_node
        node = make_node("g", "gain", {"factor": 3}, words=4)
        result = synthesize_node(node, xc4005())
        text = datapath_to_vhdl(result.rtl)
        assert "-- step 0:" in text


class TestVhdlChecker:
    def test_accepts_valid(self):
        fsm = Fsm("ok")
        fsm.add_state("a")
        fsm.add_state("b")
        fsm.add_transition("a", "b", conditions=("x",), actions=("y",))
        assert check_vhdl(fsm_to_vhdl(fsm)) == []

    def test_detects_unbalanced_process(self):
        text = fsm_to_vhdl(_simple_fsm()).replace("end process;", "", 1)
        assert any("process" in p for p in check_vhdl(text))

    def test_detects_undeclared_signal(self):
        text = fsm_to_vhdl(_simple_fsm())
        text = text.replace("begin", "begin\n  ghost <= '1';", 1)
        assert any("ghost" in p for p in check_vhdl(text))

    def test_detects_unknown_entity_reference(self):
        text = "architecture rtl of missing is\nbegin\nend architecture;"
        assert any("unknown entity" in p for p in check_vhdl(text))


def _simple_fsm():
    fsm = Fsm("simple")
    fsm.add_state("a")
    fsm.add_state("b")
    fsm.add_transition("a", "b", conditions=("x",), actions=("y",))
    fsm.add_transition("b", "a", conditions=("x",))
    return fsm


def _case_arm(text, state):
    """The emitted lines of one ``when st_<state> =>`` case arm."""
    lines = text.splitlines()
    start = None
    for i, line in enumerate(lines):
        if line.strip() == f"when st_{state} =>":
            start = i + 1
    assert start is not None, f"no case arm for {state}"
    arm = []
    for line in lines[start:]:
        stripped = line.strip()
        if stripped.startswith("when ") or stripped == "end case;":
            break
        arm.append(stripped)
    return arm


def _interpret_arm(arm, inputs, default_state):
    """Execute an emitted if/elsif/else cascade for one input valuation."""
    next_state, outputs = default_state, set()
    taken = False
    branch_active = False
    seen_if = False
    for line in arm:
        match = re.match(r"(?:if|elsif) (.*) then$", line)
        if match:
            seen_if = True
            if taken:
                branch_active = False
                continue
            expr = match.group(1)
            expr_py = re.sub(
                r"(\w+) = '([01])'",
                lambda m: (f"({m.group(1)!r} in inputs)" if m.group(2) == "1"
                           else f"({m.group(1)!r} not in inputs)"),
                expr)
            branch_active = eval(expr_py, {"inputs": inputs})  # noqa: S307
            taken = taken or branch_active
        elif line == "else":
            branch_active = not taken
            taken = True
        elif line == "end if;":
            branch_active = False
        elif line.startswith("--") or line == "null;":
            continue
        else:
            active = branch_active if seen_if else True
            assign = re.match(r"(\w+) <= '1';", line)
            goto = re.match(r"next_state <= st_(\w+);", line)
            if active and assign:
                outputs.add(assign.group(1))
            if active and goto:
                next_state = goto.group(1)
    return next_state, outputs


def _random_fsm(rng, trial):
    fsm = Fsm(f"rand{trial}")
    states = [f"s{i}" for i in range(rng.randint(2, 4))]
    for state in states:
        fsm.add_state(state, outputs=tuple(
            rng.sample(["m0", "m1"], rng.randint(0, 1))))
    for _ in range(rng.randint(1, 6)):
        fsm.add_transition(
            rng.choice(states), rng.choice(states),
            conditions=tuple(rng.sample(["a", "b", "c"], rng.randint(0, 2))),
            actions=tuple(rng.sample(["x", "y"], rng.randint(0, 2))))
    return fsm, states


class TestCascadeEmission:
    """The emitted cascade must implement ``Fsm.step`` exactly --
    unconditional transitions anywhere in the priority list included."""

    @pytest.mark.parametrize("simplify", [False, True],
                             ids=["default", "simplified"])
    def test_differential_against_fsm_step(self, simplify):
        rng = random.Random(99)
        for trial in range(120):
            fsm, states = _random_fsm(rng, trial)
            text = fsm_to_vhdl(fsm, simplify=simplify)
            assert check_vhdl(text) == [], text
            for state in states:
                arm = _case_arm(text, state)
                for k in range(4):
                    for combo in itertools.combinations("abc", k):
                        inputs = set(combo)
                        want_next, want_out = fsm.step(state, inputs)
                        got_next, got_out = _interpret_arm(arm, inputs,
                                                           state)
                        assert (want_next, set(want_out)) == \
                            (got_next, got_out), (trial, state, inputs)

    def test_mid_cascade_unconditional_becomes_else_arm(self):
        fsm = Fsm("shadow")
        for state in ("a", "b", "c", "d"):
            fsm.add_state(state)
        fsm.add_transition("a", "b", conditions=("go",))
        fsm.add_transition("a", "c")                      # else arm
        fsm.add_transition("a", "d", conditions=("x",))   # unreachable
        text = fsm_to_vhdl(fsm)
        arm = _case_arm(text, "a")
        assert "else" in arm
        assert any("unreachable" in line for line in arm), arm
        assert not any("st_d" in line and line.startswith("next_state")
                       for line in arm)
        assert check_vhdl(text) == []

    def test_leading_unconditional_reports_shadowed_tail(self):
        fsm = Fsm("lead")
        for state in ("a", "b", "c"):
            fsm.add_state(state)
        fsm.add_transition("a", "b")
        fsm.add_transition("a", "c", conditions=("x",))
        text = fsm_to_vhdl(fsm)
        arm = _case_arm(text, "a")
        assert arm[0] == "next_state <= st_b;"
        assert any("unreachable" in line for line in arm)


class TestSimplifiedEmission:
    def test_merged_branches_factor_common_literal(self):
        fsm = Fsm("factored")
        fsm.add_state("s")
        fsm.add_state("t")
        fsm.add_transition("s", "t", conditions=("c1", "c2"), actions=("x",))
        fsm.add_transition("s", "t", conditions=("c1", "c3"), actions=("x",))
        fsm.add_transition("t", "t")
        text = fsm_to_vhdl(fsm, simplify=True)
        assert "c1 = '1' and (c2 = '1' or c3 = '1')" in text
        assert guard_literal_count(text) == 3
        assert check_vhdl(text) == []

    def test_dead_branch_pruned(self):
        fsm = Fsm("dead")
        fsm.add_state("s")
        fsm.add_state("t")
        fsm.add_state("u")
        fsm.add_transition("s", "t", conditions=("a",))
        fsm.add_transition("s", "u", conditions=("a", "b"))  # shadowed
        fsm.add_transition("t", "t")
        fsm.add_transition("u", "u")
        base = fsm_to_vhdl(fsm)
        simp = fsm_to_vhdl(fsm, simplify=True)
        assert guard_literal_count(simp) < guard_literal_count(base)
        assert "st_u" not in "\n".join(_case_arm(simp, "s"))

    def test_care_sets_reduce_literals(self):
        fsm = Fsm("cared")
        fsm.add_state("w")
        fsm.add_state("r")
        fsm.add_transition("w", "r", conditions=("done_a", "done_b"))
        fsm.add_transition("r", "r")
        care = {"w": [{"done_a"}, {"done_a", "done_b"}]}
        text = fsm_to_vhdl(fsm, simplify=True, care_of=care)
        assert "done_b = '1'" in text
        assert "done_a" not in _case_arm(text, "w")[0]
        assert guard_literal_count(text) == 1

    def test_guard_literal_count_ignores_assignments(self):
        fsm = Fsm("metric")
        fsm.add_state("a")
        fsm.add_state("b")
        fsm.add_transition("a", "b", conditions=("p", "q"), actions=("x",))
        text = fsm_to_vhdl(fsm)
        assert guard_literal_count(text) == 2

    def test_fsm_guard_literals_matches_emitted_baseline(self):
        from repro.codegen import fsm_guard_literals
        rng = random.Random(5)
        for trial in range(30):
            fsm, _states = _random_fsm(rng, trial)
            assert fsm_guard_literals(fsm) == \
                guard_literal_count(fsm_to_vhdl(fsm))

    def test_double_tautology_care_sets_emit_valid_cascade(self):
        # both branches' covers become tautologies under the don't-cares;
        # only the highest-priority one may survive (no stray 'else')
        fsm = Fsm("taut")
        for state in ("s", "t1", "t2"):
            fsm.add_state(state)
        fsm.add_transition("s", "t1", conditions=("a",))
        fsm.add_transition("s", "t2", conditions=("b",))
        fsm.add_transition("t1", "t1")
        fsm.add_transition("t2", "t2")
        care = {"s": [{"a"}, {"a", "b"}]}  # 'a' always latched in s
        text = fsm_to_vhdl(fsm, simplify=True, care_of=care)
        assert check_vhdl(text) == []
        arm = _case_arm(text, "s")
        assert "else" not in arm
        assert arm == ["next_state <= st_t1;"], arm
        # and the emitted arm agrees with Fsm.step on every care vector
        for valuation in care["s"]:
            want_next, _ = fsm.step("s", set(valuation))
            got_next, _ = _interpret_arm(arm, set(valuation), "s")
            assert got_next == want_next

    def test_factored_or_terms_are_parenthesized(self):
        # a shared-literal factor plus a disjoint cube must not emit
        # the illegal 'A and (B or C) or D' mixed-operator form
        fsm = Fsm("mixed")
        fsm.add_state("s")
        fsm.add_state("t")
        fsm.add_transition("s", "t", conditions=("a", "b"), actions=("x",))
        fsm.add_transition("s", "t", conditions=("a", "c"), actions=("x",))
        fsm.add_transition("s", "t", conditions=("d",), actions=("x",))
        fsm.add_transition("t", "t")
        text = fsm_to_vhdl(fsm, simplify=True)
        cascade = "\n".join(_case_arm(text, "s"))
        assert "(a = '1' and (b = '1' or c = '1')) or d = '1'" \
            in cascade, cascade
        assert check_vhdl(text) == []


class TestCCodegen:
    def test_program_structure(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        code = software_to_c(graph, partition, schedule, plan, "dsp0")
        assert "int main(void)" in code
        for entry in schedule.on_resource("dsp0"):
            assert f"static void f_{entry.node}(" in code
            assert f"f_{entry.node}(" in code

    def test_memory_mapped_addresses_match_plan(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        code = software_to_c(graph, partition, schedule, plan, "dsp0")
        for channel in plan.memory_mapped():
            producer = channel.channel.producer_unit
            consumer = channel.channel.consumer_unit
            if "dsp0" in (producer, consumer):
                assert f"0x{channel.cell.address:04X}" in code

    def test_schedule_order_preserved(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        code = software_to_c(graph, partition, schedule, plan, "dsp0")
        order = [e.node for e in schedule.on_resource("dsp0")]
        positions = [code.index(f"/* node {n} ") for n in order]
        assert positions == sorted(positions)

    def test_start_done_handshake(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        code = software_to_c(graph, partition, schedule, plan, "dsp0")
        assert "while (!START_REG(0))" in code
        assert "DONE_REG(0) = 1;" in code

    def test_fir_body_realistic(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        code = software_to_c(graph, partition, schedule, plan, "dsp0")
        assert "acc += (long)taps[j]" in code

    def test_braces_balanced(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        code = software_to_c(graph, partition, schedule, plan, "dsp0")
        assert code.count("{") == code.count("}")


class TestNetlist:
    def test_fig4_components_present(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        netlist = generate_netlist(partition, minimal_board(), controller,
                                   plan)
        names = {c.name for c in netlist.components}
        assert {"sysctl", "io_controller", "arbiter", "dsp0", "fpga0",
                "dpc_fpga0", "sram", "sysbus"} <= names

    def test_every_node_has_start_done_nets(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        netlist = generate_netlist(partition, minimal_board(), controller,
                                   plan)
        net_names = {n.name for n in netlist.nets}
        for node in graph.nodes:
            assert f"start_{node.name}" in net_names
            assert f"done_{node.name}" in net_names

    def test_validates_clean(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        netlist = generate_netlist(partition, minimal_board(), controller,
                                   plan)
        assert netlist.validate() == []

    def test_direct_channels_point_to_point(self):
        graph = four_band_equalizer(words=8)
        arch = cool_board()
        mapping = {n.name: "dsp0" for n in graph.internal_nodes()}
        mapping.update({"band0": "fpga0", "gain0": "fpga1"})
        partition = from_mapping(graph, mapping, arch.fpga_names,
                                 arch.processor_names)
        schedule = list_schedule(partition, CostModel(graph, arch))
        stg, _ = minimize_stg(build_stg(schedule))
        controller = synthesize_system_controller(stg)
        plan = refine_communication(schedule, arch)
        netlist = generate_netlist(partition, arch, controller, plan)
        direct_nets = [n for n in netlist.nets
                       if n.name.startswith("direct_")]
        assert direct_nets
        for net in direct_nets:
            assert net.driver.split(".")[0] == "fpga0"
            assert net.sinks[0].split(".")[0] == "fpga1"

    def test_text_rendering(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        netlist = generate_netlist(partition, minimal_board(), controller,
                                   plan)
        text = netlist_text(netlist)
        assert "components:" in text
        assert "sysctl" in text
        assert "XC4005" in text

    def test_fuzzy_netlist_on_paper_board(self):
        graph = fuzzy_controller()
        arch = cool_board()
        partition, schedule, controller, plan = implementation(
            graph, arch, {"fz_e", "fz_de"})
        netlist = generate_netlist(partition, arch, controller, plan)
        stats = netlist.stats()
        assert stats["by_kind"]["fpga"] == 2
        assert stats["by_kind"]["processor"] == 1
        assert stats["by_kind"]["memory"] == 1
