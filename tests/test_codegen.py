"""Tests for VHDL/C/netlist code generation and the VHDL checker."""

import pytest

from repro.apps import four_band_equalizer, fuzzy_controller
from repro.codegen import (check_vhdl, datapath_to_vhdl, fsm_to_vhdl,
                           generate_netlist, netlist_text, software_to_c)
from repro.comm import refine_communication
from repro.controllers import (Fsm, synthesize_datapath_controller,
                               synthesize_io_controller,
                               synthesize_system_controller)
from repro.estimate import CostModel
from repro.graph import from_mapping
from repro.hls import synthesize_node
from repro.platform import cool_board, minimal_board, xc4005
from repro.schedule import list_schedule
from repro.stg import build_stg, minimize_stg


def implementation(graph, arch, hw_nodes=()):
    mapping = {}
    for node in graph.internal_nodes():
        mapping[node.name] = arch.fpga_names[0] if node.name in hw_nodes \
            else arch.processor_names[0]
    partition = from_mapping(graph, mapping, arch.fpga_names,
                             arch.processor_names)
    schedule = list_schedule(partition, CostModel(graph, arch))
    stg, _ = minimize_stg(build_stg(schedule))
    controller = synthesize_system_controller(stg)
    plan = refine_communication(schedule, arch)
    return partition, schedule, controller, plan


@pytest.fixture(scope="module")
def equalizer_impl():
    graph = four_band_equalizer(words=8)
    return (graph,) + implementation(graph, minimal_board(),
                                     {"band0", "gain0"})


class TestFsmVhdl:
    def test_all_controller_fsms_pass_checker(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        for fsm in controller.fsms:
            text = fsm_to_vhdl(fsm)
            assert check_vhdl(text) == [], f"{fsm.name} failed:\n{text}"

    def test_entity_and_ports_present(self, equalizer_impl):
        *_, controller, _ = equalizer_impl
        text = fsm_to_vhdl(controller.phase_fsm)
        assert "entity phase is" in text
        assert "clk : in std_logic" in text
        assert "rst : in std_logic" in text
        assert "system_done : out std_logic" in text

    def test_case_covers_all_states(self, equalizer_impl):
        *_, controller, _ = equalizer_impl
        seq = next(iter(controller.sequencers.values()))
        text = fsm_to_vhdl(seq)
        for state in seq.states:
            assert f"when st_{state} =>" in text

    def test_io_and_datapath_controllers_emit(self, equalizer_impl):
        graph, partition, *_ = equalizer_impl
        ioc = synthesize_io_controller(graph)
        assert check_vhdl(fsm_to_vhdl(ioc.fsm)) == []
        dpc = synthesize_datapath_controller(partition, "fpga0",
                                             {"band0": 60, "gain0": 25})
        assert check_vhdl(fsm_to_vhdl(dpc.fsm)) == []

    def test_encoding_comment(self, equalizer_impl):
        *_, controller, _ = equalizer_impl
        assert "encoding scheme: one_hot" in fsm_to_vhdl(
            controller.phase_fsm, encoding="one_hot")


class TestDatapathVhdl:
    def test_fir_datapath_passes_checker(self):
        from repro.graph import make_node
        node = make_node("band0", "fir", {"taps": (1, 2, 3)}, words=8)
        result = synthesize_node(node, xc4005())
        text = datapath_to_vhdl(result.rtl)
        assert check_vhdl(text) == [], text
        assert "entity band0 is" in text

    def test_micro_schedule_documented(self):
        from repro.graph import make_node
        node = make_node("g", "gain", {"factor": 3}, words=4)
        result = synthesize_node(node, xc4005())
        text = datapath_to_vhdl(result.rtl)
        assert "-- step 0:" in text


class TestVhdlChecker:
    def test_accepts_valid(self):
        fsm = Fsm("ok")
        fsm.add_state("a")
        fsm.add_state("b")
        fsm.add_transition("a", "b", conditions=("x",), actions=("y",))
        assert check_vhdl(fsm_to_vhdl(fsm)) == []

    def test_detects_unbalanced_process(self):
        text = fsm_to_vhdl(_simple_fsm()).replace("end process;", "", 1)
        assert any("process" in p for p in check_vhdl(text))

    def test_detects_undeclared_signal(self):
        text = fsm_to_vhdl(_simple_fsm())
        text = text.replace("begin", "begin\n  ghost <= '1';", 1)
        assert any("ghost" in p for p in check_vhdl(text))

    def test_detects_unknown_entity_reference(self):
        text = "architecture rtl of missing is\nbegin\nend architecture;"
        assert any("unknown entity" in p for p in check_vhdl(text))


def _simple_fsm():
    fsm = Fsm("simple")
    fsm.add_state("a")
    fsm.add_state("b")
    fsm.add_transition("a", "b", conditions=("x",), actions=("y",))
    fsm.add_transition("b", "a", conditions=("x",))
    return fsm


class TestCCodegen:
    def test_program_structure(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        code = software_to_c(graph, partition, schedule, plan, "dsp0")
        assert "int main(void)" in code
        for entry in schedule.on_resource("dsp0"):
            assert f"static void f_{entry.node}(" in code
            assert f"f_{entry.node}(" in code

    def test_memory_mapped_addresses_match_plan(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        code = software_to_c(graph, partition, schedule, plan, "dsp0")
        for channel in plan.memory_mapped():
            producer = channel.channel.producer_unit
            consumer = channel.channel.consumer_unit
            if "dsp0" in (producer, consumer):
                assert f"0x{channel.cell.address:04X}" in code

    def test_schedule_order_preserved(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        code = software_to_c(graph, partition, schedule, plan, "dsp0")
        order = [e.node for e in schedule.on_resource("dsp0")]
        positions = [code.index(f"/* node {n} ") for n in order]
        assert positions == sorted(positions)

    def test_start_done_handshake(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        code = software_to_c(graph, partition, schedule, plan, "dsp0")
        assert "while (!START_REG(0))" in code
        assert "DONE_REG(0) = 1;" in code

    def test_fir_body_realistic(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        code = software_to_c(graph, partition, schedule, plan, "dsp0")
        assert "acc += (long)taps[j]" in code

    def test_braces_balanced(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        code = software_to_c(graph, partition, schedule, plan, "dsp0")
        assert code.count("{") == code.count("}")


class TestNetlist:
    def test_fig4_components_present(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        netlist = generate_netlist(partition, minimal_board(), controller,
                                   plan)
        names = {c.name for c in netlist.components}
        assert {"sysctl", "io_controller", "arbiter", "dsp0", "fpga0",
                "dpc_fpga0", "sram", "sysbus"} <= names

    def test_every_node_has_start_done_nets(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        netlist = generate_netlist(partition, minimal_board(), controller,
                                   plan)
        net_names = {n.name for n in netlist.nets}
        for node in graph.nodes:
            assert f"start_{node.name}" in net_names
            assert f"done_{node.name}" in net_names

    def test_validates_clean(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        netlist = generate_netlist(partition, minimal_board(), controller,
                                   plan)
        assert netlist.validate() == []

    def test_direct_channels_point_to_point(self):
        graph = four_band_equalizer(words=8)
        arch = cool_board()
        mapping = {n.name: "dsp0" for n in graph.internal_nodes()}
        mapping.update({"band0": "fpga0", "gain0": "fpga1"})
        partition = from_mapping(graph, mapping, arch.fpga_names,
                                 arch.processor_names)
        schedule = list_schedule(partition, CostModel(graph, arch))
        stg, _ = minimize_stg(build_stg(schedule))
        controller = synthesize_system_controller(stg)
        plan = refine_communication(schedule, arch)
        netlist = generate_netlist(partition, arch, controller, plan)
        direct_nets = [n for n in netlist.nets
                       if n.name.startswith("direct_")]
        assert direct_nets
        for net in direct_nets:
            assert net.driver.split(".")[0] == "fpga0"
            assert net.sinks[0].split(".")[0] == "fpga1"

    def test_text_rendering(self, equalizer_impl):
        graph, partition, schedule, controller, plan = equalizer_impl
        netlist = generate_netlist(partition, minimal_board(), controller,
                                   plan)
        text = netlist_text(netlist)
        assert "components:" in text
        assert "sysctl" in text
        assert "XC4005" in text

    def test_fuzzy_netlist_on_paper_board(self):
        graph = fuzzy_controller()
        arch = cool_board()
        partition, schedule, controller, plan = implementation(
            graph, arch, {"fz_e", "fz_de"})
        netlist = generate_netlist(partition, arch, controller, plan)
        stats = netlist.stats()
        assert stats["by_kind"]["fpga"] == 2
        assert stats["by_kind"]["processor"] == 1
        assert stats["by_kind"]["memory"] == 1
