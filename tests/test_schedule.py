"""Unit + property tests for the scheduling package."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import four_band_equalizer, fuzzy_controller, random_task_graph
from repro.estimate import CostModel
from repro.graph import Partition, all_software, from_mapping
from repro.platform import cool_board, minimal_board
from repro.schedule import (ScheduleEntry, ScheduleError, TransferEntry,
                            alap_times, asap_times, check_schedule,
                            critical_path_length, gantt_chart, list_schedule,
                            slack, validate_schedule)


def hw_sw_partition(graph, arch, hw_nodes):
    mapping = {}
    for node in graph.internal_nodes():
        mapping[node.name] = arch.fpga_names[0] if node.name in hw_nodes \
            else arch.processor_names[0]
    return from_mapping(graph, mapping, arch.fpga_names, arch.processor_names)


@pytest.fixture
def equalizer_setup():
    graph = four_band_equalizer(words=8)
    arch = minimal_board()
    partition = hw_sw_partition(graph, arch, {"band0", "band1", "gain0"})
    model = CostModel(graph, arch)
    return graph, arch, partition, model


class TestEntries:
    def test_bad_slot_rejected(self):
        with pytest.raises(ScheduleError):
            ScheduleEntry("n", "r", 5, 5)
        with pytest.raises(ScheduleError):
            ScheduleEntry("n", "r", -1, 3)

    def test_bad_direction_rejected(self):
        with pytest.raises(ScheduleError):
            TransferEntry("e", "sideways", 0, 1)


class TestAsapAlap:
    def test_asap_respects_dependencies(self, equalizer_setup):
        graph, _, partition, model = equalizer_setup
        asap = asap_times(partition, model)
        for edge in graph.edges:
            lat = model.latency(edge.src, partition.resource_of(edge.src))
            assert asap[edge.dst] >= asap[edge.src] + lat

    def test_alap_not_before_asap(self, equalizer_setup):
        _, _, partition, model = equalizer_setup
        asap = asap_times(partition, model)
        alap = alap_times(partition, model)
        for node, t in asap.items():
            assert alap[node] >= t

    def test_critical_nodes_have_zero_slack(self, equalizer_setup):
        _, _, partition, model = equalizer_setup
        slacks = slack(partition, model)
        assert min(slacks.values()) == 0

    def test_deadline_shifts_alap(self, equalizer_setup):
        _, _, partition, model = equalizer_setup
        base = critical_path_length(partition, model)
        relaxed = alap_times(partition, model, deadline=base + 100)
        tight = alap_times(partition, model, deadline=base)
        assert all(relaxed[n] == tight[n] + 100 for n in tight)


class TestListScheduler:
    def test_schedule_is_valid(self, equalizer_setup):
        _, _, partition, model = equalizer_setup
        schedule = list_schedule(partition, model)
        assert validate_schedule(schedule) == []
        check_schedule(schedule)  # must not raise

    def test_all_nodes_scheduled(self, equalizer_setup):
        graph, _, partition, model = equalizer_setup
        schedule = list_schedule(partition, model)
        assert set(schedule.entries) == set(graph.node_names)

    def test_makespan_at_least_critical_path(self, equalizer_setup):
        _, _, partition, model = equalizer_setup
        schedule = list_schedule(partition, model)
        assert schedule.makespan >= critical_path_length(partition, model)

    def test_deterministic(self, equalizer_setup):
        _, _, partition, model = equalizer_setup
        s1 = list_schedule(partition, model)
        s2 = list_schedule(partition, model)
        assert [(e.node, e.start) for e in
                sorted(s1.entries.values(), key=lambda e: e.node)] == \
            [(e.node, e.start) for e in
             sorted(s2.entries.values(), key=lambda e: e.node)]

    def test_cut_edges_get_two_transfers(self, equalizer_setup):
        _, _, partition, model = equalizer_setup
        schedule = list_schedule(partition, model)
        for edge in partition.cut_edges():
            directions = sorted(t.direction for t in schedule.transfers_of(edge))
            assert directions == ["read", "write"]

    def test_pure_software_serializes_on_cpu(self):
        graph = four_band_equalizer(words=8)
        arch = minimal_board()
        partition = all_software(graph, "dsp0", hw_resources=arch.fpga_names)
        model = CostModel(graph, arch)
        schedule = list_schedule(partition, model)
        cpu_busy = sum(e.duration for e in schedule.on_resource("dsp0"))
        internal = [n.name for n in graph.internal_nodes()]
        assert cpu_busy == sum(model.latency(n, "dsp0") for n in internal)

    def test_parallel_partition_beats_pure_software(self):
        graph = four_band_equalizer(words=16)
        arch = cool_board()
        model = CostModel(graph, arch)
        sw = all_software(graph, "dsp0", hw_resources=arch.fpga_names)
        mapping = {"band0": "fpga0", "gain0": "fpga0",
                   "band1": "fpga1", "gain1": "fpga1"}
        for node in graph.internal_nodes():
            mapping.setdefault(node.name, "dsp0")
        mixed = from_mapping(graph, mapping, arch.fpga_names,
                             arch.processor_names)
        t_sw = list_schedule(sw, model).makespan
        t_mixed = list_schedule(mixed, model).makespan
        assert t_mixed < t_sw

    def test_utilization_and_summary(self, equalizer_setup):
        _, _, partition, model = equalizer_setup
        schedule = list_schedule(partition, model)
        summary = schedule.summary()
        assert summary["nodes"] == len(schedule.entries)
        for resource in partition.resources_used:
            assert 0 <= schedule.utilization(resource) <= 1

    def test_gantt_chart_renders(self, equalizer_setup):
        _, _, partition, model = equalizer_setup
        schedule = list_schedule(partition, model)
        chart = gantt_chart(schedule)
        assert "makespan" in chart
        assert "dsp0" in chart and "bus" in chart


class TestSchedulePropertyBased:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=8, max_value=40),
           st.integers(min_value=0, max_value=999),
           st.integers(min_value=0, max_value=999))
    def test_random_graph_random_partition_valid(self, n, seed, pseed):
        graph = random_task_graph(n, seed=seed)
        arch = cool_board()
        rng = random.Random(pseed)
        mapping = {node.name: rng.choice(arch.resource_names)
                   for node in graph.internal_nodes()}
        partition = from_mapping(graph, mapping, arch.fpga_names,
                                 arch.processor_names)
        model = CostModel(graph, arch)
        schedule = list_schedule(partition, model)
        assert validate_schedule(schedule) == []

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=99))
    def test_fuzzy_any_single_hw_node_valid(self, pick):
        graph = fuzzy_controller()
        arch = cool_board()
        internal = [n.name for n in graph.internal_nodes()]
        hw = {internal[pick % len(internal)]}
        partition = hw_sw_partition(graph, arch, hw)
        model = CostModel(graph, arch)
        schedule = list_schedule(partition, model)
        assert validate_schedule(schedule) == []


class TestValidatorCatchesCorruption:
    def test_overlap_detected(self, equalizer_setup):
        _, _, partition, model = equalizer_setup
        schedule = list_schedule(partition, model)
        first = schedule.on_resource("dsp0")[0]
        # forge an overlapping entry on the same resource
        victim = schedule.on_resource("dsp0")[1]
        del schedule.entries[victim.node]
        schedule.entries[victim.node] = ScheduleEntry(
            victim.node, victim.resource, first.start, first.start + 1)
        assert any("overlaps" in p for p in validate_schedule(schedule))

    def test_missing_transfer_detected(self, equalizer_setup):
        _, _, partition, model = equalizer_setup
        schedule = list_schedule(partition, model)
        schedule.transfers.pop()
        problems = validate_schedule(schedule)
        assert any("expected 1 write + 1 read" in p for p in problems)

    def test_wrong_resource_detected(self, equalizer_setup):
        _, _, partition, model = equalizer_setup
        schedule = list_schedule(partition, model)
        node = next(iter(schedule.entries))
        entry = schedule.entries.pop(node)
        schedule.entries[node] = ScheduleEntry(node, "fpga0" if
                                               entry.resource != "fpga0"
                                               else "dsp0",
                                               entry.start, entry.end)
        problems = validate_schedule(schedule)
        assert any("coloured" in p for p in problems)
