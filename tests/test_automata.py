"""Unit tests for the shared automaton kernel (repro.automata)."""

import pytest

from repro.automata import (AutomataError, AutomatonBuilder,
                            CompositionConfig, ProductEnvironment,
                            SequentialRunner, SymbolTable,
                            SynchronousComposition, TokenExecutor,
                            encode_names, internal_signals,
                            minimize_automaton, reachable_automaton,
                            refine_partition, synchronous_product)


def chain_automaton():
    """idle -> a -> b -> idle, each hop guarded and acting."""
    b = AutomatonBuilder("chain")
    b.add_state("idle")
    b.add_state("a")
    b.add_state("b")
    b.add_transition("idle", "a", conditions=("go",), actions=("start_a",))
    b.add_transition("a", "b", conditions=("done_a",), actions=("start_b",))
    b.add_transition("b", "idle", conditions=("done_b",), actions=("fin",))
    return b.build()


class TestSymbolTable:
    def test_round_trip(self):
        table = SymbolTable()
        assert table.intern("x") == table.intern("x")
        assert table.name_of(table.intern("y")) == "y"
        assert table.ids_of(["x", "ghost"]) == {table.id_of("x")}
        assert "ghost" not in table


class TestAutomatonCore:
    def test_duplicate_state_rejected(self):
        b = AutomatonBuilder("dup")
        b.add_state("s")
        with pytest.raises(AutomataError):
            b.add_state("s")

    def test_unknown_endpoint_rejected(self):
        b = AutomatonBuilder("ghost")
        b.add_state("s")
        with pytest.raises(AutomataError):
            b.add_transition("s", "nowhere")

    def test_out_transitions_preserve_priority(self):
        b = AutomatonBuilder("prio")
        b.add_state("s")
        b.add_state("t")
        b.add_transition("s", "t", conditions=("x",), actions=("first",))
        b.add_transition("s", "s", conditions=("x",), actions=("second",))
        a = b.build()
        sym = a.symbols
        assert [sym.names_of(t.actions) for t in a.out(a.index_of("s"))] \
            == [("first",), ("second",)]

    def test_signal_inventories(self):
        a = chain_automaton()
        assert a.input_names() == ["done_a", "done_b", "go"]
        assert a.output_names() == ["fin", "start_a", "start_b"]

    def test_fingerprint_ignores_signal_declaration_order(self):
        def build(cond_order):
            b = AutomatonBuilder("fp")
            b.add_state("s")
            b.add_state("t")
            b.add_transition("s", "t", conditions=cond_order,
                             actions=("out",))
            return b.build()
        assert build(("p", "q")).fingerprint() == \
            build(("q", "p")).fingerprint()

    def test_fingerprint_sees_structure(self):
        a = chain_automaton()
        b = AutomatonBuilder("chain")
        b.add_state("idle")
        b.add_state("a")
        b.add_state("b")
        b.add_transition("idle", "a", conditions=("go",),
                         actions=("start_a",))
        b.add_transition("a", "b", conditions=("done_a",),
                         actions=("start_b",))
        b.add_transition("b", "idle", conditions=("done_b",),
                         actions=("DIFFERENT",))
        assert a.fingerprint() != b.build().fingerprint()


class TestMinimizer:
    def build_diamond(self):
        """s0 branches to equivalent a/b which rejoin at end."""
        b = AutomatonBuilder("diamond")
        for s in ("s0", "a", "b", "end"):
            b.add_state(s)
        b.add_transition("s0", "a", conditions=("p",))
        b.add_transition("s0", "b", conditions=("q",))
        b.add_transition("a", "end", conditions=("t",), actions=("out",))
        b.add_transition("b", "end", conditions=("t",), actions=("out",))
        b.add_transition("end", "s0")
        return b.build()

    def test_equivalent_states_merge(self):
        reduced, refinement = minimize_automaton(self.build_diamond())
        assert refinement.merged == 1
        assert set(reduced.state_names) == {"s0", "a", "end"}

    def test_refinement_deterministic(self):
        a = self.build_diamond()
        assert refine_partition(a) == refine_partition(a)

    def test_initial_preferred_as_representative(self):
        b = AutomatonBuilder("entry")
        b.add_state("a")
        b.add_state("b")
        b.add_state("end")
        b.add_transition("a", "end", conditions=("t",), actions=("out",))
        b.add_transition("b", "end", conditions=("t",), actions=("out",))
        a = b.build(initial="b")
        reduced, refinement = minimize_automaton(a, ordered=True)
        assert refinement.merged == 1
        assert "b" in reduced.state_names
        assert "a" not in reduced.state_names
        assert reduced.name_of(reduced.initial) == "b"

    def test_ordered_signatures_respect_priority(self):
        # two states with the same transition *set* but swapped priority:
        # overlapping guards make the order observable
        b = AutomatonBuilder("prio")
        for s in ("p", "q", "t1", "t2"):
            b.add_state(s)
        b.add_transition("t1", "t1", actions=("one",))
        b.add_transition("t2", "t2", actions=("two",))
        b.add_transition("p", "t1", conditions=("x",), actions=("first",))
        b.add_transition("p", "t2", conditions=("x",), actions=("second",))
        b.add_transition("q", "t2", conditions=("x",), actions=("second",))
        b.add_transition("q", "t1", conditions=("x",), actions=("first",))
        a = b.build(initial="p")
        _, unordered = minimize_automaton(a, ordered=False)
        _, ordered = minimize_automaton(a, ordered=True)
        assert unordered.merged == 1       # same behaviour as a *set*
        assert ordered.merged == 0         # priority makes them distinct

    def test_key_partition_never_crossed(self):
        b = AutomatonBuilder("keys")
        b.add_state("a", key="cpu")
        b.add_state("b", key="fpga")
        a = b.build()
        assert refine_partition(a).n_blocks == 2


class TestTokenExecutor:
    def fork_join(self):
        """R forks to two chains that join at D (marked-graph shape)."""
        b = AutomatonBuilder("forkjoin")
        for s in ("R", "u", "v", "D"):
            b.add_state(s)
        b.add_transition("R", "u", actions=("go_u",))
        b.add_transition("R", "v", actions=("go_v",))
        b.add_transition("u", "D", conditions=("done_u",))
        b.add_transition("v", "D", conditions=("done_v",))
        return b.build(initial="R")

    def test_join_requires_all_inputs(self):
        a = self.fork_join()
        ex = TokenExecutor(a, final=[a.index_of("D")])
        sym = a.symbols
        first = ex.step()
        assert sorted(sym.name_of(s) for s in first) == ["go_u", "go_v"]
        ex.step(sym.ids_of({"done_u"}))
        assert not ex.done
        ex.step(sym.ids_of({"done_v"}))
        assert ex.done

    def test_conditions_latched(self):
        a = self.fork_join()
        ex = TokenExecutor(a, final=[a.index_of("D")])
        sym = a.symbols
        # both dones latched before the fork even fires
        ex.step(sym.ids_of({"done_u", "done_v"}))
        assert ex.done

    def test_reset_replays_identically(self):
        a = self.fork_join()
        ex = TokenExecutor(a, final=[a.index_of("D")])
        sym = a.symbols
        ex.run([sym.ids_of({"done_u", "done_v"})])
        first = list(ex.trace)
        ex.reset()
        ex.run([sym.ids_of({"done_u", "done_v"})])
        assert ex.trace == first

    def test_requires_initial_state(self):
        b = AutomatonBuilder("empty")
        with pytest.raises(AutomataError):
            TokenExecutor(b.build())

    def test_snapshot_restore_round_trip(self):
        a = self.fork_join()
        ex = TokenExecutor(a, final=[a.index_of("D")])
        sym = a.symbols
        ex.step()
        mid = ex.snapshot()
        ex.step(sym.ids_of({"done_u", "done_v"}))
        assert ex.done
        ex.restore(mid)
        assert not ex.done
        assert ex.snapshot() == mid
        assert ex.trace == [] and ex.step_count == 0  # diagnostics reset
        # restored runs continue exactly where the snapshot was taken
        ex.step(sym.ids_of({"done_u", "done_v"}))
        assert ex.done

    def test_snapshots_identify_configurations_not_histories(self):
        a = self.fork_join()
        ex = TokenExecutor(a, final=[a.index_of("D")])
        sym = a.symbols
        ex.step(sym.ids_of({"done_u"}))
        ex.step(sym.ids_of({"done_v"}))
        two_steps = ex.snapshot()
        ex.reset()
        ex.step(sym.ids_of({"done_u", "done_v"}))
        assert ex.snapshot() == two_steps

    def test_round_limited_stepping_exposes_intermediates(self):
        b = AutomatonBuilder("cascade")
        for s in ("R", "m", "D"):
            b.add_state(s)
        b.add_transition("R", "m", actions=("first",))
        b.add_transition("m", "D", actions=("second",))
        a = b.build(initial="R")
        sym = a.symbols
        full = TokenExecutor(a, final=[a.index_of("D")])
        assert sym.names_of(full.step()) == ("first", "second")
        limited = TokenExecutor(a, final=[a.index_of("D")])
        assert sym.names_of(limited.step(max_rounds=1)) == ("first",)
        assert not limited.done
        assert sym.names_of(limited.step(max_rounds=1)) == ("second",)
        assert limited.done


class TestSequentialRunner:
    def test_priority_and_moore(self):
        b = AutomatonBuilder("m")
        b.add_state("s", outputs=("alive",))
        b.add_state("t")
        b.add_transition("s", "t", conditions=("x",), actions=("hop",))
        b.add_transition("s", "s", conditions=("x",), actions=("shadowed",))
        a = b.build()
        runner = SequentialRunner(a)
        sym = a.symbols
        state, outs = runner.step(a.index_of("s"), sym.ids_of({"x"}))
        assert a.name_of(state) == "t"
        assert sym.names_of(outs) == ("alive", "hop")
        state, outs = runner.step(a.index_of("s"), set())
        assert a.name_of(state) == "s"
        assert sym.names_of(outs) == ("alive",)


def ping_pong():
    """Two FSMs handshaking over hidden tick/tock channels."""
    ping = AutomatonBuilder("ping")
    ping.add_state("idle")
    ping.add_state("sent")
    ping.add_transition("idle", "sent", conditions=("kick",),
                        actions=("tick",))
    ping.add_transition("sent", "idle", conditions=("tock",),
                        actions=("round_done",))
    pong = AutomatonBuilder("pong")
    pong.add_state("wait")
    pong.add_state("got")
    pong.add_transition("wait", "got", conditions=("tick",),
                        actions=("work",))
    pong.add_transition("got", "wait", actions=("tock",))
    return ping.build(), pong.build()


class TestSynchronousComposition:
    def test_internal_signal_detection(self):
        assert internal_signals(ping_pong()) == ("tick", "tock")

    def test_channel_delay_and_completion(self):
        composition = SynchronousComposition(ping_pong())
        external = []
        external += composition.cycle(pulses={"kick"})
        for _ in range(4):
            external += composition.cycle()
        assert "work" in external
        assert "round_done" in external
        # hidden channels never leak
        assert "tick" not in external and "tock" not in external
        # kick stays latched (flag-register semantics), so after the
        # round completes ping has already re-fired into 'sent'
        assert composition.state_names == ("sent", "wait")

    def test_product_materializes_composite_behaviour(self):
        product = synchronous_product(ping_pong())
        assert product.initial is not None
        # the composed round trip appears as product transitions
        actions = {product.symbols.name_of(a)
                   for t in product.transitions for a in t.actions}
        assert {"work", "round_done"} <= actions
        assert "tick" not in actions  # hidden channel stays hidden
        assert 3 <= len(product) <= 8

    def test_product_state_bound_enforced(self):
        with pytest.raises(AutomataError):
            synchronous_product(ping_pong(), max_states=1)

    def test_product_minimizes_like_any_automaton(self):
        product = synchronous_product(ping_pong())
        reduced, refinement = minimize_automaton(product, ordered=True)
        assert len(reduced) == len(product) - refinement.merged

    def test_product_explores_breadth_first(self):
        # regression: exploration used a LIFO pop (depth-first) while
        # the p<index>[...] labels promise breadth ordering; the label
        # sequence is pinned so a traversal change cannot slip through
        product = synchronous_product(ping_pong())
        assert product.state_names == (
            "p0[idle|wait]", "p1[sent|wait]", "p2[sent|got]",
            "p3[sent|wait]", "p4[idle|got]")
        again = synchronous_product(ping_pong())
        assert again.state_names == product.state_names
        assert again.fingerprint() == product.fingerprint()

    def test_held_signals_are_not_latched(self):
        b = AutomatonBuilder("hop")
        b.add_state("s0")
        b.add_state("s1")
        b.add_state("s2")
        b.add_transition("s0", "s1", conditions=("kick",))
        b.add_transition("s1", "s2", conditions=("kick",))
        letters = [frozenset(), frozenset({"kick"})]

        def silent_successor(product, src):
            sym = product.symbols
            return next(product.name_of(t.dst) for t in product.out(src)
                        if not sym.names_of(t.conditions))

        latched = synchronous_product([b.build()], letters=letters)
        # one kick pulse latches: the silent letter still advances s1
        assert silent_successor(latched, 1) == "p2[s2]"
        held = synchronous_product([b.build()], letters=letters,
                                   held=("kick",))
        # held for one cycle only: silence leaves s1 where it is
        assert silent_successor(held, 1) == "p1[s1]"

    def test_environment_policy_prunes_and_extends_states(self):
        class OneShot(ProductEnvironment):
            """'kick' admissible only until it was delivered once."""

            def initial_state(self):
                return True

            def letters(self, env_state, config):
                letters = [frozenset()]
                if env_state:
                    letters.append(frozenset({"kick"}))
                return letters

            def advance(self, env_state, letter, actions):
                return env_state and "kick" not in letter

        ping, pong = ping_pong()
        open_product = synchronous_product((ping, pong))
        constrained = synchronous_product((ping, pong),
                                          environment=OneShot())
        sym = constrained.symbols
        kick = sym.id_of("kick")
        kick_edges = [t for t in constrained.transitions
                      if kick in t.conditions]
        assert kick_edges  # admissible once...
        # ...and never from a post-kick state: every kick edge leaves a
        # state whose environment half still allows it
        for t in kick_edges:
            assert constrained.key_of(t.src)[1] is True
        # the open product may pulse kick from every state; the
        # environment prunes those replays away
        open_kick = open_product.symbols.id_of("kick")
        open_edges = [t for t in open_product.transitions
                      if open_kick in t.conditions]
        assert len(kick_edges) < len(open_edges)


class TestReachableAutomaton:
    def test_materializes_a_pure_stepper(self):
        def step(config, letter):
            if "inc" in letter:
                nxt = (config + 1) % 3
                return nxt, ("wrap",) if nxt == 0 else ()
            return config, ()

        automaton = reachable_automaton(
            "mod3", 0, step, letters=[frozenset(), frozenset({"inc"})],
            label_of=lambda config, index: f"n{config}")
        assert automaton.state_names == ("n0", "n1", "n2")
        sym = automaton.symbols
        wraps = [t for t in automaton.transitions
                 if sym.names_of(t.actions) == ("wrap",)]
        assert len(wraps) == 1
        assert automaton.name_of(wraps[0].src) == "n2"
        assert automaton.name_of(wraps[0].dst) == "n0"

    def test_state_bound_enforced(self):
        with pytest.raises(AutomataError):
            reachable_automaton(
                "counter", 0, lambda c, letter: (c + 1, ()),
                letters=[frozenset()], max_states=10)

    def test_letters_and_environment_are_mutually_exclusive(self):
        with pytest.raises(AutomataError, match="not both"):
            reachable_automaton(
                "ambiguous", 0, lambda c, letter: (c, ()),
                letters=[frozenset({"go"})],
                environment=ProductEnvironment())
        with pytest.raises(AutomataError, match="not both"):
            synchronous_product(ping_pong(),
                                letters=[frozenset({"kick"})],
                                environment=ProductEnvironment())


class TestEncodings:
    def test_schemes(self):
        names = ["a", "b", "c"]
        binary = encode_names(names, "binary")
        assert sorted(binary.values()) == ["00", "01", "10"]
        one_hot = encode_names(names, "one_hot")
        assert all(code.count("1") == 1 for code in one_hot.values())
        gray = encode_names(names, "gray")
        assert len(set(gray.values())) == 3

    def test_errors(self):
        with pytest.raises(AutomataError):
            encode_names([], "binary")
        with pytest.raises(AutomataError):
            encode_names(["a"], "quantum")
