"""Tests for repro-lint (:mod:`repro.analysis`).

Each rule gets a fixture pair: an offending snippet that must produce
the finding and a corrected snippet that must come back clean.  On top
of the per-rule pairs: suppression and baseline round-trips (including
the mandatory-reason enforcement, LNT001/LNT004), engine determinism,
and the meta-test that the linter gate passes on this repository
itself.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (Baseline, Finding, all_rules, lint_sources,
                            parse_suppressions, render_json, rules_for,
                            write_baseline)
from repro.analysis.baseline import line_text_of
from repro.analysis.engine import ModuleContext

REPO_ROOT = Path(__file__).resolve().parents[1]


def run(source, rules=None, baseline=None, path="mod.py"):
    sources = {path: textwrap.dedent(source)}
    return lint_sources(sources, rules=rules, baseline=baseline), sources


def rule_ids(result):
    return [finding.rule for finding in result.findings]


# ----------------------------------------------------------------- DET
class TestDetRules:
    def test_det101_flags_set_iteration(self):
        result, _ = run("""
            def labels(xs):
                out = []
                for x in set(xs):
                    out.append(x)
                return out
            """)
        assert rule_ids(result) == ["DET101"]

    def test_det101_clean_when_sorted(self):
        result, _ = run("""
            def labels(xs):
                return [x for x in sorted(set(xs))]
            """)
        assert result.clean

    def test_det101_exempts_order_insensitive_consumers(self):
        result, _ = run("""
            def total(xs):
                return sum(x * 2 for x in set(xs))

            def uniq(xs):
                return {x * 2 for x in set(xs)}
            """)
        assert result.clean

    def test_det101_flags_set_algebra(self):
        result, _ = run("""
            def merge(a, b):
                return [x for x in set(a) | set(b)]
            """)
        assert rule_ids(result) == ["DET101"]

    def test_det102_flags_clock_in_fingerprint(self):
        result, _ = run("""
            import time

            def fingerprint(x):
                return (x, time.time())
            """)
        assert rule_ids(result) == ["DET102"]

    def test_det102_follows_same_module_calls(self):
        result, _ = run("""
            import uuid

            def _salt():
                return uuid.uuid4()

            def fingerprint(x):
                return (x, _salt())
            """)
        assert rule_ids(result) == ["DET102"]
        assert result.findings[0].symbol == "_salt"

    def test_det102_covers_stage_bodies(self):
        result, _ = run("""
            def _stage_x(ctx):
                return {"out": id(ctx.get("graph"))}

            STAGES = [Stage("x", ("graph",), ("out",), _stage_x)]
            """)
        assert "DET102" in rule_ids(result)

    def test_det102_exempts_seeded_random(self):
        result, _ = run("""
            import random

            def fingerprint(x):
                rng = random.Random(f"key:{x}")
                return rng.random()
            """)
        assert result.clean

    def test_det102_flags_unseeded_random(self):
        result, _ = run("""
            import random

            def fingerprint(x):
                rng = random.Random()
                return rng.random()
            """)
        assert rule_ids(result) == ["DET102"]

    def test_det102_ignores_unreachable_functions(self):
        result, _ = run("""
            import time

            def stopwatch():
                return time.perf_counter()
            """)
        assert result.clean

    def test_det103_flags_set_pop(self):
        result, _ = run("""
            def drain(xs):
                return set(xs).pop()
            """)
        assert rule_ids(result) == ["DET103"]

    def test_det103_clean_for_list_pop(self):
        result, _ = run("""
            def drain(xs):
                return sorted(set(xs)).pop()
            """)
        assert result.clean


# ----------------------------------------------------------------- PKL
class TestPklRules:
    def test_pkl201_flags_unsafe_field(self):
        result, _ = run("""
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class JobPayload:
                handle: object
            """)
        assert rule_ids(result) == ["PKL201"]

    def test_pkl201_flags_dotted_and_quoted_types(self):
        result, _ = run("""
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class JobPayload:
                lock: "threading.Lock"
                pool: futures.Executor
            """)
        assert rule_ids(result) == ["PKL201", "PKL201"]

    def test_pkl201_clean_for_allowlisted_types(self):
        result, _ = run("""
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class JobPayload:
                name: str
                sizes: tuple
                graph: TaskGraph
                spec: "WorkloadSpec | None"
            """)
        assert result.clean

    def test_pkl201_obligation_is_inherited(self):
        result, _ = run("""
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class WorkloadSpec:
                seed: int

            @dataclass(frozen=True)
            class CustomSpec(WorkloadSpec):
                callback: object
            """)
        assert rule_ids(result) == ["PKL201"]
        assert result.findings[0].symbol == "CustomSpec"

    def test_pkl202_requires_frozen_dataclass(self):
        result, _ = run("""
            from dataclasses import dataclass

            @dataclass
            class JobSummary:
                name: str
            """)
        assert rule_ids(result) == ["PKL202"]

    def test_pkl202_clean_when_frozen(self):
        result, _ = run("""
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class JobSummary:
                name: str
            """)
        assert result.clean


# ----------------------------------------------------------------- FRZ
class TestFrzRules:
    def test_frz301_flags_setattr_outside_constructor(self):
        result, _ = run("""
            def clobber(x):
                object.__setattr__(x, "field", 1)
            """)
        assert rule_ids(result) == ["FRZ301"]

    def test_frz301_allows_post_init(self):
        result, _ = run("""
            class Point:
                def __post_init__(self):
                    object.__setattr__(self, "norm", 5)
            """)
        assert result.clean

    def test_frz302_flags_kernel_self_mutation(self):
        result, _ = run("""
            class Automaton:
                def poke(self):
                    self.states = ()
            """)
        assert rule_ids(result) == ["FRZ302"]

    def test_frz302_allows_constructor_builder_and_memo(self):
        result, _ = run("""
            class Stg:
                def __init__(self):
                    self.states = {}
                    self._automaton_cache = None

                def add_state(self, name):
                    self.states[name] = name
                    self._version = 1

                def to_automaton(self):
                    self._automaton_cache = object()
                    return self._automaton_cache
            """)
        assert result.clean

    def test_frz303_flags_external_kernel_write(self):
        result, _ = run("""
            def clobber(a: Automaton):
                a.initial = "s0"
            """)
        assert rule_ids(result) == ["FRZ303"]

    def test_frz303_builder_views_allow_public_writes_only(self):
        result, _ = run("""
            def shape(s: Stg):
                s.initial = "s0"
                s._automaton_cache = None
            """)
        assert rule_ids(result) == ["FRZ303"]
        assert "_automaton_cache" in result.findings[0].message

    def test_frz303_flags_frozen_dataclass_write(self):
        result, _ = run("""
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Config:
                depth: int

            def bump():
                config = Config(1)
                config.depth = 2
            """)
        assert rule_ids(result) == ["FRZ303"]

    def test_frz303_clean_for_untracked_classes(self):
        result, _ = run("""
            def shape(box):
                box.value = 1
            """)
        assert result.clean


# ----------------------------------------------------------------- PUR
STAGE_PRELUDE = """
    def _stage_x(ctx):
        {body}
    STAGES = [Stage("x", ("graph", "arch"), ("out",), _stage_x)]
    """


def run_stage(body):
    return run(STAGE_PRELUDE.format(body=body))


class TestPurRules:
    def test_pur401_flags_undeclared_read(self):
        result, _ = run_stage(
            'return {"out": ctx.get("hidden")}')
        assert rule_ids(result) == ["PUR401"]

    def test_pur401_clean_for_declared_reads(self):
        result, _ = run_stage(
            'return {"out": (ctx.get("graph"), ctx.get("arch"))}')
        assert result.clean

    def test_pur402_flags_direct_context_write(self):
        result, _ = run_stage(
            'ctx.put("out", 1)\n'
            '        return {"out": 1}')
        assert rule_ids(result) == ["PUR402"]

    def test_pur403_flags_dynamic_key(self):
        result, _ = run_stage(
            'key = "graph"\n'
            '        return {"out": ctx.get(key)}')
        assert rule_ids(result) == ["PUR403"]

    def test_pur404_flags_missing_output(self):
        result, _ = run_stage(
            'return {"other": ctx.get("graph")}')
        assert rule_ids(result) == ["PUR404"]

    def test_pur404_skips_unpacked_returns(self):
        result, _ = run_stage(
            'extra = {}\n'
            '        return {**extra}')
        assert result.clean

    def test_pur405_flags_module_level_io(self):
        result, _ = run("""
            print("importing")
            """)
        assert rule_ids(result) == ["PUR405"]

    def test_pur405_allows_main_guard_and_functions(self):
        result, _ = run("""
            def report():
                print("fine")

            if __name__ == "__main__":
                print("also fine")
            """)
        assert result.clean


# ------------------------------------------- sanctioned-I/O carve-out
class TestSanctionedIoCarveOut:
    """The ``repro/store/`` carve-out is scoped to exactly that path.

    One I/O-and-clock-bearing source is linted under several paths: it
    must come back clean under ``repro/store/`` (PUR405 and DET102 are
    the store's sanctioned mechanism) and fully flagged anywhere else --
    including a module merely *named* store outside the package.  The
    order-determinism rules must keep applying inside the store.
    """

    IO_SOURCE = """
        import time

        handle = open("index.json")

        def fingerprint(key):
            return str(time.time()) + key
        """

    def test_store_path_is_sanctioned(self):
        result, _ = run(self.IO_SOURCE, path="src/repro/store/disk.py")
        assert result.clean

    def test_flow_path_keeps_full_rules(self):
        result, _ = run(self.IO_SOURCE, path="src/repro/flow/pipeline.py")
        assert set(rule_ids(result)) == {"PUR405", "DET102"}

    def test_store_named_module_outside_package_not_sanctioned(self):
        result, _ = run(self.IO_SOURCE, path="src/repro/analysis/store.py")
        assert set(rule_ids(result)) == {"PUR405", "DET102"}

    def test_order_rules_still_apply_inside_store(self):
        result, _ = run("""
            def eviction_order(keys):
                return [k for k in set(keys)]
            """, path="src/repro/store/disk.py")
        assert rule_ids(result) == ["DET101"]


# ------------------------------------------------- suppressions/baseline
class TestSuppressions:
    OFFENDING = """
        def labels(xs):
            return [x for x in set(xs)]{trailer}
        """

    def test_trailing_suppression_with_reason(self):
        result, _ = run(self.OFFENDING.format(
            trailer="  # repro-lint: ignore[DET101] -- order folds into"
                    " a set downstream"))
        assert result.clean
        assert len(result.suppressed) == 1
        finding, suppression = result.suppressed[0]
        assert finding.rule == "DET101"
        assert "folds" in suppression.reason

    def test_reasonless_suppression_is_rejected(self):
        result, _ = run(self.OFFENDING.format(
            trailer="  # repro-lint: ignore[DET101]"))
        assert sorted(rule_ids(result)) == ["DET101", "LNT001"]

    def test_comment_block_suppression_binds_past_continuations(self):
        result, _ = run("""
            def labels(xs):
                # repro-lint: ignore[DET101] -- the order is rebuilt by
                # the caller, so it cannot escape
                return [x for x in set(xs)]
            """)
        assert result.clean
        assert len(result.suppressed) == 1

    def test_suppression_only_covers_named_rules(self):
        result, _ = run("""
            def fingerprint(xs):
                return [id(x) for x in set(xs)]  # repro-lint: ignore[DET101] -- order ok
            """)
        assert rule_ids(result) == ["DET102"]
        assert len(result.suppressed) == 1


class TestBaseline:
    OFFENDING = """
        def labels(xs):
            return [x for x in set(xs)]
        """

    def test_round_trip(self, tmp_path):
        result, sources = run(self.OFFENDING)
        assert rule_ids(result) == ["DET101"]
        baseline_path = tmp_path / "baseline.json"
        write_baseline(result.findings, baseline_path, sources)

        data = json.loads(baseline_path.read_text())
        assert data["findings"][0]["reason"] == ""
        data["findings"][0]["reason"] = "grandfathered: order is display-only"
        baseline_path.write_text(json.dumps(data))

        again, _ = run(self.OFFENDING, baseline=Baseline.load(baseline_path))
        assert again.clean
        assert len(again.baselined) == 1

    def test_reasonless_entry_fails_the_gate(self, tmp_path):
        result, sources = run(self.OFFENDING)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(result.findings, baseline_path, sources)
        again, _ = run(self.OFFENDING, baseline=Baseline.load(baseline_path))
        assert "LNT004" in rule_ids(again)

    def test_edited_line_resurfaces_the_finding(self):
        result, sources = run(self.OFFENDING)
        entry = {"rule": "DET101", "path": "mod.py",
                 "line_text": "return [x for x in set(osx)]",  # edited
                 "reason": "no longer matches"}
        again, _ = run(self.OFFENDING, baseline=Baseline([entry]))
        assert rule_ids(again) == ["DET101"]
        assert again.stale_baseline == [entry]

    def test_matching_is_whitespace_insensitive(self):
        result, sources = run(self.OFFENDING)
        entry = {"rule": "DET101", "path": "mod.py",
                 "line_text": "return [x  for x in   set(xs)]",
                 "reason": "spacing differs, content matches"}
        again, _ = run(self.OFFENDING, baseline=Baseline([entry]))
        assert again.clean


# ------------------------------------------------------------ engine
class TestEngine:
    def test_syntax_error_is_reported_not_raised(self):
        result, _ = run("def broken(:\n")
        assert rule_ids(result) == ["LNT003"]

    def test_duplicate_payload_class_is_reported(self):
        result = lint_sources({
            "a.py": "class JobPayload:\n    pass\n",
            "b.py": "class JobPayload:\n    pass\n"})
        assert "LNT002" in rule_ids(result)

    def test_findings_are_sorted_and_deterministic(self):
        source = """
            def labels(xs):
                victim = set(xs).pop()
                return [x for x in set(xs)]
            """
        first, _ = run(source)
        second, _ = run(source)
        assert first.findings == second.findings
        assert first.findings == sorted(first.findings)

    def test_rule_selection_by_family_and_id(self):
        source = """
            def fingerprint(xs):
                return [id(x) for x in set(xs)]
            """
        det_only, _ = run(source, rules=["DET"])
        assert set(rule_ids(det_only)) == {"DET101", "DET102"}
        one_rule, _ = run(source, rules=["DET102"])
        assert rule_ids(one_rule) == ["DET102"]

    def test_registry_has_all_families(self):
        families = {rule.family for rule in all_rules()}
        assert {"DET", "PKL", "FRZ", "PUR"} <= families
        assert len(all_rules()) >= 13
        assert rules_for(["PKL"]) == [r for r in all_rules()
                                      if r.family == "PKL"]

    def test_json_report_shape(self):
        result, _ = run("def f():\n    return [x for x in set(())]\n")
        report = render_json(result)
        assert report["rule_counts"] == {"DET101": 1}
        assert report["family_counts"] == {"DET": 1}
        assert report["clean"] is False
        json.dumps(report)  # must be serializable


# ---------------------------------------------------------- meta-test
def _linter_env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestRepositoryGate:
    def test_repo_is_clean(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src"],
            cwd=REPO_ROOT, env=_linter_env(),
            capture_output=True, text=True)
        assert completed.returncode == 0, completed.stdout
        assert "0 finding(s)" in completed.stdout

    def test_seeded_violation_fails_the_gate(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(textwrap.dedent("""
            import time

            def fingerprint(x):
                return time.time()
            """))
        completed = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(bad),
             "--no-baseline", "--json"],
            cwd=REPO_ROOT, env=_linter_env(),
            capture_output=True, text=True)
        assert completed.returncode == 1
        report = json.loads(completed.stdout)
        assert report["rule_counts"] == {"DET102": 1}

    def test_usage_error_exit_code(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "does/not/exist"],
            cwd=REPO_ROOT, env=_linter_env(),
            capture_output=True, text=True)
        assert completed.returncode == 2
